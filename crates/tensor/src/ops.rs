//! Concrete (non-abstract) neural-network primitives over [`Matrix`].
//!
//! These implement the exact forward semantics that the abstract
//! transformers of `deept-core` over-approximate; the soundness test suites
//! compare abstract outputs against these functions.

use crate::Matrix;

/// Element-wise ReLU.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|x| x.max(0.0))
}

/// Element-wise tanh.
pub fn tanh(m: &Matrix) -> Matrix {
    m.map(f64::tanh)
}

/// Element-wise exponential.
pub fn exp(m: &Matrix) -> Matrix {
    m.map(f64::exp)
}

/// Row-wise numerically-stable softmax.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

/// Numerically-stable softmax of a single slice, in place.
pub fn softmax_in_place(row: &mut [f64]) {
    let max = row.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

/// The paper's layer normalization *without* division by the standard
/// deviation (§3.1): each row is centred to zero mean, then scaled by
/// `gamma` and shifted by `beta` per feature.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `m.cols()`.
pub fn layer_norm_no_std(m: &Matrix, gamma: &[f64], beta: &[f64]) -> Matrix {
    assert_eq!(gamma.len(), m.cols());
    assert_eq!(beta.len(), m.cols());
    let means = m.row_means();
    let mut out = m.clone();
    for (r, &mean) in means.iter().enumerate() {
        for (c, v) in out.row_mut(r).iter_mut().enumerate() {
            *v = (*v - mean) * gamma[c] + beta[c];
        }
    }
    out
}

/// Standard layer normalization (with division by the standard deviation),
/// used by the Table 7 experiment.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `m.cols()`.
pub fn layer_norm_std(m: &Matrix, gamma: &[f64], beta: &[f64], epsilon: f64) -> Matrix {
    assert_eq!(gamma.len(), m.cols());
    assert_eq!(beta.len(), m.cols());
    let means = m.row_means();
    let mut out = m.clone();
    for (r, &mean) in means.iter().enumerate() {
        let row = out.row_mut(r);
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / row.len() as f64;
        let denom = (var + epsilon).sqrt();
        for (c, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) / denom * gamma[c] + beta[c];
        }
    }
    out
}

/// Index of the maximum entry of a slice (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(v: &[f64]) -> usize {
    assert!(!v.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_tanh() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        assert_eq!(relu(&m), Matrix::from_rows(&[&[0.0, 2.0]]));
        assert!((tanh(&m).at(0, 1) - 2.0f64.tanh()).abs() < 1e-15);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = [1000.0, 1001.0];
        softmax_in_place(&mut a);
        let mut b = [0.0, 1.0];
        softmax_in_place(&mut b);
        assert!((a[0] - b[0]).abs() < 1e-12);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn layer_norm_no_std_centres_rows() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[10.0, -10.0]]);
        let out = layer_norm_no_std(&m, &[1.0, 1.0], &[0.0, 0.0]);
        assert_eq!(out, Matrix::from_rows(&[&[-1.0, 1.0], &[10.0, -10.0]]));
        let out2 = layer_norm_no_std(&m, &[2.0, 2.0], &[1.0, 1.0]);
        assert_eq!(out2, Matrix::from_rows(&[&[-1.0, 3.0], &[21.0, -19.0]]));
    }

    #[test]
    fn layer_norm_std_normalizes_variance() {
        let m = Matrix::from_rows(&[&[0.0, 2.0, 4.0, 6.0]]);
        let out = layer_norm_std(&m, &[1.0; 4], &[0.0; 4], 0.0);
        let mean: f64 = out.row(0).iter().sum::<f64>() / 4.0;
        let var: f64 = out.row(0).iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }
}
