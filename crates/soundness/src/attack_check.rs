//! Attack/certificate consistency: no attack may succeed strictly below a
//! certified radius.
//!
//! Certification claims that *every* point of the ℓp ball classifies as the
//! predicted label; the randomized attack searches for a counterexample. If
//! the attack finds an adversarial point at a radius strictly below the
//! certified one, the certificate is unsound — a hard failure, not a
//! precision question.

use deept_core::PNorm;
use deept_nn::transformer::TransformerClassifier;
use deept_verifier::attack::attack_t1;
use deept_verifier::deept::{certify, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use deept_verifier::radius::max_certified_radius;
use rand::Rng;

/// A successful attack strictly inside a certified region.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackViolation {
    /// The radius the verifier certified.
    pub certified_radius: f64,
    /// The strictly smaller radius at which the attack flipped the label.
    pub attack_radius: f64,
}

/// Certifies the maximum radius for one instance, then attacks strictly
/// below it.
///
/// The attack is launched at several fractions of the certified radius
/// (deep inside the ball and just under its surface), with `samples` random
/// probes each. Returns the violation if any attack succeeds; `None` means
/// the certificate survived falsification. Instances whose certified radius
/// is `0` (nothing claimed) are vacuously consistent.
#[allow(clippy::too_many_arguments)]
pub fn check_attack_consistency(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    p: PNorm,
    cfg: &DeepTConfig,
    search_iters: usize,
    samples: usize,
    rng: &mut impl Rng,
) -> Option<AttackViolation> {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let pred = model.predict(tokens);
    let certified = max_certified_radius(
        |r| {
            let region = t1_region(&emb, position, r, p);
            certify(&net, &region, pred, cfg).certified
        },
        0.01,
        search_iters,
    );
    if certified <= 0.0 {
        return None;
    }
    for frac in [0.25, 0.5, 0.75, 0.9, 0.99] {
        let attack_radius = frac * certified;
        if attack_t1(model, tokens, position, attack_radius, p, samples, rng).is_some() {
            return Some(AttackViolation {
                certified_radius: certified,
                attack_radius,
            });
        }
    }
    None
}
