//! Differential soundness fuzzing for the DeepT verifier.
//!
//! Everything in this repository rests on one invariant: **the abstract
//! output of every transformer contains every concrete output**. This crate
//! attacks that invariant from three directions and turns every surviving
//! counterexample into a named bug:
//!
//! * [`containment`] — the differential containment harness. It propagates
//!   an input region abstractly, capturing the per-stage zonotopes through
//!   [`deept_verifier::deept::SoundnessProbe`], then drives concrete
//!   perturbed embeddings (sampled inside the certified ℓp ball) through the
//!   concrete encoder layer by layer and asserts each intermediate
//!   activation lies within the matching zonotope's interval bounds.
//! * [`attack_check`] — attack/certificate consistency. For every certified
//!   instance it runs the randomized attack strictly *below* the certified
//!   radius; a successful attack there is a hard soundness failure.
//! * [`microcheck`] — relaxation micro-checker. Dense grids over randomized
//!   `[l, u]` intervals for each elementwise relaxation (relu / tanh / exp /
//!   reciprocal / √) and sampled noise points for the dot-product and
//!   softmax transformers, including the adversarial regimes that broke
//!   early versions: `l == u`, `u − l < 1e-12`, endpoints at or near `0`
//!   for reciprocal/√, and ±1-ulp endpoint nudges.
//! * [`refine_check`] — refined-certificate gate. Every `Certified` verdict
//!   of the branch-and-bound refinement ladder gets concrete-point
//!   containment probes and randomized attacks at and below the certified
//!   radius (an attack success there is a hard failure); `Falsified`
//!   verdicts must carry counterexamples the concrete model actually
//!   misclassifies.
//! * [`resume_check`] — resume-identity gate. A cold propagation captures
//!   every layer-boundary snapshot; warm runs resumed from each snapshot
//!   (the serving layer's cross-request state cache in action) must
//!   reproduce the remaining snapshots and the final logits bitwise —
//!   `f64::to_bits` equality, the exact guarantee `crates/serve` promises
//!   for warm requests.
//! * [`precision`] — `f32` storage nesting. Each instance is propagated
//!   with `f64` and with `f32` generator storage (`DEEPT_PREC=f32`); the
//!   `f32` logits interval must contain the `f64` reference interval,
//!   pinning the outward-rounding compression design.
//!
//! [`fuzz`] orchestrates all three under one seed; the CLI exposes it as
//! `deept fuzz-soundness --seed N --cases M`, and CI runs fixed seeds on
//! every change.

#![deny(clippy::print_stdout)]
#![warn(missing_docs)]

pub mod attack_check;
pub mod containment;
pub mod fuzz;
pub mod microcheck;
pub mod precision;
pub mod refine_check;
pub mod resume_check;

pub use attack_check::{check_attack_consistency, AttackViolation};
pub use containment::{check_containment, ContainmentViolation, SnapshotCollector};
pub use fuzz::{run, FuzzConfig, FuzzReport};
pub use microcheck::{
    check_relaxations, check_transformers, RelaxationViolation, TransformerViolation,
};
pub use precision::{check_f32_nesting, PrecisionViolation};
pub use refine_check::{check_refined_certificates, RefineViolation, RefineViolationKind};
pub use resume_check::{check_resume_identity, ResumeViolation, ResumeViolationKind};
