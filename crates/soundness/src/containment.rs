//! Differential containment: concrete executions versus abstract states.
//!
//! The harness propagates a T1 input region through the abstract verifier
//! once, capturing the zonotope after every encoder layer plus the final
//! logits via [`SoundnessProbe`]. It then samples concrete perturbed
//! embeddings inside the same ℓp ball, runs them through the *concrete*
//! network layer by layer, and checks that each intermediate activation sits
//! inside the corresponding zonotope's interval bounds. Any escape is a
//! soundness violation in some abstract transformer between the two stages.

use deept_core::PNorm;
use deept_core::Zonotope;
use deept_nn::transformer::TransformerClassifier;
use deept_tensor::Matrix;
use deept_verifier::deept::{propagate_with_snapshots, DeepTConfig, SoundnessProbe};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use rand::Rng;

/// A concrete activation that escaped its abstract state.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainmentViolation {
    /// Which abstract state was escaped: `"input"`, `"layer i"` or
    /// `"logits"`.
    pub stage: String,
    /// Flat variable index (row-major) inside the stage.
    pub index: usize,
    /// The concrete value.
    pub value: f64,
    /// Abstract interval lower bound at that variable.
    pub lo: f64,
    /// Abstract interval upper bound at that variable.
    pub hi: f64,
    /// How far outside the interval the value lies (beyond tolerance).
    pub excess: f64,
}

/// Collects the per-stage zonotopes of one propagation.
#[derive(Default)]
pub struct SnapshotCollector {
    /// The input region.
    pub input: Option<Zonotope>,
    /// Abstract state after each encoder layer, in order.
    pub layers: Vec<Zonotope>,
    /// The final logits zonotope.
    pub logits: Option<Zonotope>,
}

impl SoundnessProbe for SnapshotCollector {
    fn input(&mut self, z: &Zonotope) {
        self.input = Some(z.clone());
    }

    fn layer_output(&mut self, i: usize, z: &Zonotope) {
        debug_assert_eq!(i, self.layers.len(), "layers must arrive in order");
        self.layers.push(z.clone());
    }

    fn logits(&mut self, z: &Zonotope) {
        self.logits = Some(z.clone());
    }
}

/// Tolerance for concrete-vs-abstract comparisons: the abstract transformers
/// are sound in real arithmetic, but the concrete forward pass and the
/// abstract bound computation round differently, so containment only holds
/// up to accumulated floating-point noise. Matches the slack used by the
/// verifier's own propagation tests.
fn tol(v: f64) -> f64 {
    1e-7 * (1.0 + v.abs())
}

fn check_stage(stage: &str, z: &Zonotope, concrete: &Matrix, out: &mut Vec<ContainmentViolation>) {
    let (lo, hi) = z.bounds();
    for (k, &v) in concrete.as_slice().iter().enumerate() {
        // NaN bounds (poisoned abstract state) fail closed upstream; the
        // comparisons below are false for NaN so they never flag here.
        let (l, h) = (lo[k], hi[k]);
        let t = tol(v);
        if v < l - t || v > h + t {
            let excess = (l - v).max(v - h) - t;
            out.push(ContainmentViolation {
                stage: stage.to_string(),
                index: k,
                value: v,
                lo: l,
                hi: h,
                excess,
            });
        }
    }
}

/// Runs the differential containment harness on one certification instance.
///
/// Samples `samples` concrete perturbed embeddings inside the ℓp ball of
/// `radius` around the embedding of `tokens` at `position` (alternating
/// interior and extreme-point noise), executes each through the concrete
/// encoder layer by layer, and compares every intermediate activation and
/// the final logits against the abstract states captured from one
/// [`propagate_with_snapshots`] run. Returns all violations found.
#[allow(clippy::too_many_arguments)]
pub fn check_containment(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    cfg: &DeepTConfig,
    samples: usize,
    rng: &mut impl Rng,
) -> Vec<ContainmentViolation> {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let region = t1_region(&emb, position, radius, p);
    let mut snaps = SnapshotCollector::default();
    let _ = propagate_with_snapshots(&net, &region, cfg, &mut snaps);
    let input = snaps
        .input
        .as_ref()
        .expect("propagation always snapshots its input");

    let mut violations = Vec::new();
    for s in 0..samples {
        // Half the samples sit at extreme points of the noise region, where
        // inward-rounded bounds are most likely to be escaped.
        let (phi, eps) = if s % 2 == 0 {
            region.sample_noise(rng)
        } else {
            region.sample_extreme_noise(rng)
        };
        let x0 = Matrix::from_vec(emb.rows(), emb.cols(), region.evaluate(&phi, &eps))
            .expect("evaluate yields rows*cols values");
        check_stage("input", input, &x0, &mut violations);
        let mut x = x0;
        for (i, (layer, z)) in net.layers.iter().zip(&snaps.layers).enumerate() {
            x = layer.forward(&x, net.layer_norm, net.head_dim);
            check_stage(&format!("layer {i}"), z, &x, &mut violations);
            if z.has_non_finite() {
                // The verifier failed closed at this layer (unbounded
                // logits); deeper snapshots are placeholders.
                return violations;
            }
        }
        let logits = model.classify(&x);
        if let Some(z) = &snaps.logits {
            check_stage("logits", z, &logits, &mut violations);
        }
    }
    violations
}
