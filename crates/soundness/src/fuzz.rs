//! Orchestrates one seeded fuzzing run across all three soundness checks.

use deept_core::PNorm;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_verifier::deept::DeepTConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::attack_check::{check_attack_consistency, AttackViolation};
use crate::containment::{check_containment, ContainmentViolation};
use crate::microcheck::{
    check_relaxations, check_transformers, RelaxationViolation, TransformerViolation,
};
use crate::precision::{check_f32_nesting, PrecisionViolation};
use crate::refine_check::{check_refined_certificates, RefineViolation};
use crate::resume_check::{check_resume_identity, ResumeViolation};
use deept_refine::RefineConfig;

/// Parameters of one fuzzing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Seed for the deterministic RNG; the same seed always replays the
    /// same cases.
    pub seed: u64,
    /// Number of randomized cases per check family.
    pub cases: usize,
}

/// Everything one fuzzing run found.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Relaxation micro-checker intervals examined.
    pub relaxation_cases: usize,
    /// Pointwise relaxation violations.
    pub relaxation_violations: Vec<RelaxationViolation>,
    /// Dot/softmax transformer cases examined.
    pub transformer_cases: usize,
    /// Transformer containment escapes.
    pub transformer_violations: Vec<TransformerViolation>,
    /// Concrete samples driven through the containment harness.
    pub containment_samples: usize,
    /// Differential containment violations.
    pub containment_violations: Vec<ContainmentViolation>,
    /// Certified instances attacked below their certified radius.
    pub attack_instances: usize,
    /// Attacks that succeeded strictly below a certified radius.
    pub attack_violations: Vec<AttackViolation>,
    /// Instances checked for f32-storage bound nesting.
    pub precision_instances: usize,
    /// f32-mode logit intervals that failed to contain the f64 reference.
    pub precision_violations: Vec<PrecisionViolation>,
    /// Queries driven through the full refinement ladder.
    pub refine_instances: usize,
    /// Refined verdicts contradicted by concrete evidence.
    pub refine_violations: Vec<RefineViolation>,
    /// Cold/warm propagation pairs checked for resume identity.
    pub resume_instances: usize,
    /// Warm resumes that failed to reproduce their cold run bitwise.
    pub resume_violations: Vec<ResumeViolation>,
}

impl FuzzReport {
    /// Total violations across all check families.
    pub fn total_violations(&self) -> usize {
        self.relaxation_violations.len()
            + self.transformer_violations.len()
            + self.containment_violations.len()
            + self.attack_violations.len()
            + self.precision_violations.len()
            + self.refine_violations.len()
            + self.resume_violations.len()
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "seed {}: relaxations {}/{} cases violated, transformers {}/{} cases violated, \
             containment {} violations over {} samples, attacks-below-certified {} over {} \
             instances, f32-nesting {} violations over {} instances, refined-verdicts {} \
             violations over {} instances, resume-identity {} violations over {} instances",
            self.seed,
            self.relaxation_violations.len(),
            self.relaxation_cases,
            self.transformer_violations.len(),
            self.transformer_cases,
            self.containment_violations.len(),
            self.containment_samples,
            self.attack_violations.len(),
            self.attack_instances,
            self.precision_violations.len(),
            self.precision_instances,
            self.refine_violations.len(),
            self.refine_instances,
            self.resume_violations.len(),
            self.resume_instances,
        )
    }
}

fn fuzz_model(ln: LayerNormKind, layers: usize, seed: u64) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 13,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: layers,
            num_classes: 2,
            layer_norm: ln,
        },
        &mut rng,
    )
}

/// Runs the full soundness fuzzing battery under one seed.
///
/// * relaxation micro-checks: `cases` random intervals per activation;
/// * transformer micro-checks: `cases` random zonotope instances;
/// * differential containment: six model/norm/verifier combinations (both
///   layer-norm flavours, all three norms, Fast and Precise dot products),
///   `cases / 8 + 2` concrete samples each;
/// * attack consistency: every combination certified to its maximum radius,
///   then attacked strictly below it.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut report = FuzzReport {
        seed: cfg.seed,
        ..FuzzReport::default()
    };

    report.relaxation_cases = cfg.cases;
    report.relaxation_violations = check_relaxations(cfg.cases, &mut rng);

    report.transformer_cases = cfg.cases;
    report.transformer_violations = check_transformers(cfg.cases, &mut rng);

    // Differential containment + attack consistency over a small matrix of
    // instances: both layer-norm flavours (standard layer norm exercises the
    // √/reciprocal concretization), every norm, Fast and Precise verifiers,
    // random token sequences and perturbed positions.
    let combos: [(LayerNormKind, PNorm, DeepTConfig); 6] = [
        (LayerNormKind::NoStd, PNorm::L1, DeepTConfig::fast(4000)),
        (LayerNormKind::NoStd, PNorm::L2, DeepTConfig::precise(500)),
        (LayerNormKind::NoStd, PNorm::Linf, DeepTConfig::fast(16)),
        (
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::L1,
            DeepTConfig::fast(4000),
        ),
        (
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::L2,
            DeepTConfig::combined(500),
        ),
        (
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::Linf,
            DeepTConfig::fast(4000),
        ),
    ];
    let samples = cfg.cases / 8 + 2;
    for (i, (ln, p, vcfg)) in combos.iter().enumerate() {
        let model = fuzz_model(*ln, 2, cfg.seed.wrapping_add(i as u64));
        let len = rng.gen_range(3..=5usize);
        let tokens: Vec<usize> = (0..len).map(|_| rng.gen_range(0..13usize)).collect();
        let position = rng.gen_range(0..len);
        let radius = [0.01, 0.05, 0.2][rng.gen_range(0..3usize)];
        report.containment_samples += samples;
        report.containment_violations.extend(check_containment(
            &model, &tokens, position, radius, *p, vcfg, samples, &mut rng,
        ));

        report.attack_instances += 1;
        if let Some(v) =
            check_attack_consistency(&model, &tokens, position, *p, vcfg, 12, 200, &mut rng)
        {
            report.attack_violations.push(v);
        }

        report.precision_instances += 1;
        report.precision_violations.extend(check_f32_nesting(
            &model, &tokens, position, radius, *p, vcfg,
        ));
    }

    // Refined-verdict gate: the escalation ladder with deliberately starved
    // flat budgets, so the queries actually reach the branch-and-bound
    // stage and its split/snapshot machinery is what gets falsified. Radii
    // near the tiny models' certification frontier keep all three verdicts
    // (certified / falsified / unknown) in play across seeds.
    let refine_combos: [(LayerNormKind, PNorm); 3] = [
        (LayerNormKind::NoStd, PNorm::Linf),
        (LayerNormKind::NoStd, PNorm::L2),
        (LayerNormKind::Std { epsilon: 1e-5 }, PNorm::Linf),
    ];
    let rcfg = RefineConfig {
        fast_budget: 1,
        precise_budget: 1,
        refine_budget: 400,
        max_nodes: 32,
        seed: cfg.seed,
        ..RefineConfig::default()
    };
    for (i, (ln, p)) in refine_combos.iter().enumerate() {
        let model = fuzz_model(*ln, 2, cfg.seed.wrapping_add(16 + i as u64));
        let len = rng.gen_range(3..=5usize);
        let tokens: Vec<usize> = (0..len).map(|_| rng.gen_range(0..13usize)).collect();
        let position = rng.gen_range(0..len);
        let radius = [0.02, 0.05, 0.075][rng.gen_range(0..3usize)];
        report.refine_instances += 1;
        report.refine_violations.extend(check_refined_certificates(
            &model, &tokens, position, radius, *p, &rcfg, samples, 200, &mut rng,
        ));
    }

    // Resume-identity gate: every snapshot depth of a cold propagation is
    // replayed as a warm resume and must reproduce the cold logits bitwise
    // (the serving layer's cross-request state cache stands on exactly this
    // identity). Three-layer models give the resume loop a real suffix to
    // replay; the matrix covers both layer-norm flavours, all norms, and
    // Fast/Precise/Combined dot products.
    let resume_combos: [(LayerNormKind, PNorm, DeepTConfig); 4] = [
        (LayerNormKind::NoStd, PNorm::Linf, DeepTConfig::fast(4000)),
        (LayerNormKind::NoStd, PNorm::L2, DeepTConfig::precise(500)),
        (
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::L1,
            DeepTConfig::combined(500),
        ),
        (
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::Linf,
            DeepTConfig::fast(16),
        ),
    ];
    for (i, (ln, p, vcfg)) in resume_combos.iter().enumerate() {
        let model = fuzz_model(*ln, 3, cfg.seed.wrapping_add(32 + i as u64));
        let len = rng.gen_range(3..=5usize);
        let tokens: Vec<usize> = (0..len).map(|_| rng.gen_range(0..13usize)).collect();
        let position = rng.gen_range(0..len);
        let radius = [0.01, 0.05, 0.2][rng.gen_range(0..3usize)];
        report.resume_instances += 1;
        report.resume_violations.extend(check_resume_identity(
            &model, &tokens, position, radius, *p, vcfg,
        ));
    }
    report
}
