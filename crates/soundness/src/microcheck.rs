//! Relaxation and transformer micro-checker.
//!
//! Elementwise relaxations are checked pointwise on dense grids over
//! randomized `[l, u]` intervals, with dedicated adversarial regimes:
//! `l == u`, widths below `1e-12` (where early versions collapsed to an
//! unsound midpoint constant), endpoints at or near `0` for reciprocal/√,
//! and ±1-ulp endpoint nudges. The dot-product and softmax transformers are
//! checked by sampling noise instantiations of random zonotopes and
//! asserting the concrete results stay inside the abstract bounds.

use deept_core::dot::{zono_matmul, DotConfig};
use deept_core::elementwise::{Activation, Relaxation};
use deept_core::softmax::{softmax_rows, SoftmaxConfig};
use deept_core::{PNorm, Zonotope};
use deept_tensor::Matrix;
use rand::Rng;

/// A concrete function value that escaped its relaxation band.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxationViolation {
    /// The activation whose relaxation was violated.
    pub activation: Activation,
    /// Interval lower endpoint.
    pub l: f64,
    /// Interval upper endpoint.
    pub u: f64,
    /// The input point inside `[l, u]`.
    pub x: f64,
    /// The concrete function value `f(x)`.
    pub value: f64,
    /// Relaxation band lower bound at `x`.
    pub lo: f64,
    /// Relaxation band upper bound at `x`.
    pub hi: f64,
}

/// A concrete transformer output that escaped the abstract bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerViolation {
    /// Which transformer: `"dot/fast"`, `"dot/precise"`, `"softmax"` or
    /// `"softmax/no-refine"`.
    pub transformer: String,
    /// Flat variable index in the output.
    pub index: usize,
    /// The concrete value.
    pub value: f64,
    /// Abstract lower bound.
    pub lo: f64,
    /// Abstract upper bound.
    pub hi: f64,
}

const ACTIVATIONS: [Activation; 5] = [
    Activation::Relu,
    Activation::Tanh,
    Activation::Exp,
    Activation::Reciprocal,
    Activation::Sqrt,
];

fn needs_positive_domain(act: Activation) -> bool {
    matches!(act, Activation::Reciprocal | Activation::Sqrt)
}

fn is_poisoned(r: &Relaxation) -> bool {
    r.mu.is_nan()
}

/// Pointwise tolerance: the relaxation construction and the band evaluation
/// `λ·x + μ ± β` each round a handful of times, so soundness is asserted up
/// to a few dozen ulps of the participating magnitudes. This is ~`1e-14`
/// relative — strict enough to catch the historical midpoint-collapse bug
/// (≈ `5e-13` relative) while ignoring genuine last-ulp rounding.
fn band_tol(lambda: f64, x: f64, mu: f64, beta: f64, y: f64) -> f64 {
    64.0 * f64::EPSILON * (1.0 + (lambda * x).abs() + mu.abs() + beta.abs() + y.abs())
}

fn check_point(
    act: Activation,
    r: &Relaxation,
    l: f64,
    u: f64,
    x: f64,
) -> Option<RelaxationViolation> {
    let y = act.eval(x);
    let lo = r.lambda * x + r.mu - r.beta;
    let hi = r.lambda * x + r.mu + r.beta;
    let tol = band_tol(r.lambda, x, r.mu, r.beta, y);
    if y < lo - tol || y > hi + tol {
        return Some(RelaxationViolation {
            activation: act,
            l,
            u,
            x,
            value: y,
            lo,
            hi,
        });
    }
    None
}

/// Grid over `[l, u]`: evenly spaced interior points plus the endpoints and
/// their one-ulp interior neighbours (where inward-rounded bands fail
/// first).
fn grid(l: f64, u: f64) -> Vec<f64> {
    let mut pts = vec![l, u, l.next_up().min(u), u.next_down().max(l)];
    let steps = 61;
    for i in 1..steps {
        let x = l + (u - l) * i as f64 / steps as f64;
        if x.is_finite() && x >= l && x <= u {
            pts.push(x);
        }
    }
    pts
}

fn check_interval(act: Activation, l: f64, u: f64, out: &mut Vec<RelaxationViolation>) {
    let r = act.relaxation(l, u);
    if is_poisoned(&r) {
        // Poisoning is the *correct* response for out-of-domain inputs; a
        // finite band there would be the bug. In-domain poisoning is
        // over-conservative but sound, so it is never a violation.
        return;
    }
    if needs_positive_domain(act) && l <= 0.0 {
        // A finite band over an interval containing the domain boundary can
        // never be sound (the function is unbounded or undefined there).
        out.push(RelaxationViolation {
            activation: act,
            l,
            u,
            x: l,
            value: f64::NAN,
            lo: r.lambda * l + r.mu - r.beta,
            hi: r.lambda * l + r.mu + r.beta,
        });
        return;
    }
    for x in grid(l, u) {
        if let Some(v) = check_point(act, &r, l, u, x) {
            out.push(v);
        }
    }
}

/// One random interval per regime index, cycling through the adversarial
/// regimes.
fn interval_for(act: Activation, case: usize, rng: &mut impl Rng) -> (f64, f64) {
    let positive = needs_positive_domain(act);
    let base_l = if positive {
        rng.gen_range(1e-3f64..4.0)
    } else {
        rng.gen_range(-6.0f64..6.0)
    };
    match case % 6 {
        // Wide random interval.
        0 => (base_l, base_l + rng.gen_range(0.001f64..8.0)),
        // Degenerate width below the 1e-12 point threshold.
        1 => {
            let w = 10f64.powf(rng.gen_range(-16.0f64..-12.1));
            (base_l, base_l + w)
        }
        // Exact point.
        2 => (base_l, base_l),
        // One-ulp interval.
        3 => (base_l, base_l.next_up()),
        // Near-zero lower endpoint (domain boundary for reciprocal/√; a
        // deep-negative/tiny interval for the rest).
        4 => {
            let l = [f64::MIN_POSITIVE, 1e-300, 1e-18, 1e-9][rng.gen_range(0..4usize)];
            let l = if positive {
                l
            } else {
                l - rng.gen_range(0.0f64..2.0)
            };
            (l, l + rng.gen_range(0.0f64..1.0))
        }
        // Out-of-domain lower endpoint: l = 0, l = −ε, plain negative.
        _ => {
            let l = [0.0, -f64::MIN_POSITIVE, -1e-15, -0.5][rng.gen_range(0..4usize)];
            (l, l + rng.gen_range(0.1f64..2.0))
        }
    }
}

/// Runs `cases` randomized interval checks against every elementwise
/// relaxation, returning all pointwise violations found. Out-of-domain
/// intervals (reciprocal/√ with `l ≤ 0`) must come back poisoned; a finite
/// band there is itself recorded as a violation by [`check_interval`].
pub fn check_relaxations(cases: usize, rng: &mut impl Rng) -> Vec<RelaxationViolation> {
    let mut out = Vec::new();
    for case in 0..cases {
        for act in ACTIVATIONS {
            let (l, u) = interval_for(act, case, rng);
            check_interval(act, l, u, &mut out);
        }
    }
    out
}

fn random_zono(
    rows: usize,
    cols: usize,
    num_phi: usize,
    num_eps: usize,
    p: PNorm,
    rng: &mut impl Rng,
) -> Zonotope {
    let n = rows * cols;
    let center: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
    let phi: Vec<f64> = (0..n * num_phi)
        .map(|_| rng.gen_range(-0.4f64..0.4))
        .collect();
    let eps: Vec<f64> = (0..n * num_eps)
        .map(|_| rng.gen_range(-0.4f64..0.4))
        .collect();
    Zonotope::from_parts(
        rows,
        cols,
        center,
        Matrix::from_vec(n, num_phi, phi).expect("sized"),
        Matrix::from_vec(n, num_eps, eps).expect("sized"),
        p,
    )
}

fn record_escapes(
    transformer: &str,
    out_z: &Zonotope,
    concrete: &[f64],
    out: &mut Vec<TransformerViolation>,
) {
    let (lo, hi) = out_z.bounds();
    for (k, &v) in concrete.iter().enumerate() {
        // Same slack as the crate-level propagation proptests: the abstract
        // and concrete evaluations accumulate rounding independently.
        let tol = 1e-8 * (1.0 + v.abs());
        if v < lo[k] - tol || v > hi[k] + tol {
            out.push(TransformerViolation {
                transformer: transformer.to_string(),
                index: k,
                value: v,
                lo: lo[k],
                hi: hi[k],
            });
        }
    }
}

/// Runs `cases` randomized soundness checks against the dot-product
/// transformer (Fast and Precise) and the softmax transformer (with and
/// without sum refinement), returning all containment escapes.
pub fn check_transformers(cases: usize, rng: &mut impl Rng) -> Vec<TransformerViolation> {
    let mut out = Vec::new();
    let norms = [PNorm::L1, PNorm::L2, PNorm::Linf];
    for _ in 0..cases {
        let p = norms[rng.gen_range(0..3usize)];

        // Dot-product transformer on (n×k)·(k×m) with mismatched ε counts
        // (the transformer pads the narrower operand).
        let (n, k, m) = (
            rng.gen_range(1..=3usize),
            rng.gen_range(1..=3usize),
            rng.gen_range(1..=3usize),
        );
        let a = random_zono(n, k, 2, rng.gen_range(1..=4usize), p, rng);
        let b = random_zono(k, m, 2, rng.gen_range(1..=4usize), p, rng);
        for (name, cfg) in [
            ("dot/fast", DotConfig::fast()),
            ("dot/precise", DotConfig::precise()),
        ] {
            let prod = zono_matmul(&a, &b, cfg);
            for s in 0..8 {
                let (phi, eps) = if s % 2 == 0 {
                    prod.sample_noise(rng)
                } else {
                    prod.sample_extreme_noise(rng)
                };
                let va = a.evaluate(&phi, &eps[..a.num_eps()]);
                let vb = b.evaluate(&phi, &eps[..b.num_eps()]);
                let am = Matrix::from_vec(n, k, va).expect("sized");
                let bm = Matrix::from_vec(k, m, vb).expect("sized");
                let exact = am.matmul(&bm);
                record_escapes(name, &prod, exact.as_slice(), &mut out);
            }
        }

        // Softmax transformer, rows × cols up to 3 × 4.
        let (rows, cols) = (rng.gen_range(1..=3usize), rng.gen_range(2..=4usize));
        let z = random_zono(rows, cols, 2, rng.gen_range(1..=3usize), p, rng);
        for (name, cfg) in [
            ("softmax", SoftmaxConfig::default()),
            ("softmax/no-refine", SoftmaxConfig::without_refinement()),
        ] {
            let sm = softmax_rows(&z, cfg);
            for s in 0..8 {
                let (phi, eps) = if s % 2 == 0 {
                    sm.sample_noise(rng)
                } else {
                    sm.sample_extreme_noise(rng)
                };
                let vals = z.evaluate(&phi, &eps[..z.num_eps()]);
                let mut concrete = vals;
                for r in 0..rows {
                    deept_tensor::ops::softmax_in_place(&mut concrete[r * cols..(r + 1) * cols]);
                }
                record_escapes(name, &sm, &concrete, &mut out);
            }
        }
    }
    out
}
