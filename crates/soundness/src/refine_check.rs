//! Refined-certificate gate: the branch-and-bound ladder's verdicts under
//! the same falsification pressure as the flat verifiers.
//!
//! The refinement ladder ([`deept_refine`]) certifies queries the flat
//! passes lose by splitting noise symbols and re-propagating suffixes from
//! layer snapshots — exactly the machinery where a subtle bug (a split that
//! fails to cover the parent, a snapshot resumed with the wrong prefix)
//! would produce a *plausible but unsound* certificate. This module attacks
//! refined verdicts directly:
//!
//! * every `Certified { margin }` answer gets a concrete-point containment
//!   check — perturbed embeddings sampled inside the certified ℓp ball must
//!   classify as the certified label *and* achieve at least the claimed
//!   margin (up to float tolerance);
//! * the randomized attack is launched at and below the certified radius —
//!   an attack success there is a hard soundness failure, not a precision
//!   question;
//! * every `Falsified` answer must carry a genuine counterexample — an
//!   adversarial embedding the concrete model actually misclassifies.

use deept_core::PNorm;
use deept_nn::transformer::TransformerClassifier;
use deept_refine::{refine_certify, RefineConfig, RefineOutcome};
use deept_tensor::Matrix;
use deept_verifier::attack::attack_t1;
use deept_verifier::deadline::Deadline;
use deept_verifier::network::{t1_region, VerifiableTransformer};
use rand::Rng;

/// A refined verdict contradicted by concrete evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineViolation {
    /// The certified (or falsified) query radius.
    pub radius: f64,
    /// The ladder level that produced the verdict.
    pub level: String,
    /// What went wrong.
    pub kind: RefineViolationKind,
}

/// The concrete evidence contradicting a refined verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum RefineViolationKind {
    /// A sampled in-ball embedding misclassified despite a `Certified`
    /// verdict — hard unsoundness.
    ConcreteEscape {
        /// The sample's concrete margin (negative: misclassified).
        concrete_margin: f64,
        /// The margin the certificate claimed as a lower bound.
        certified_margin: f64,
    },
    /// A sampled in-ball embedding classified correctly but undercut the
    /// claimed margin lower bound beyond float tolerance.
    MarginOverclaim {
        /// The sample's concrete margin.
        concrete_margin: f64,
        /// The claimed (larger) lower bound.
        certified_margin: f64,
    },
    /// The randomized attack flipped the label at or below a certified
    /// radius — hard unsoundness.
    AttackBreaksCertificate {
        /// The radius at which the attack succeeded.
        attack_radius: f64,
    },
    /// A `Falsified` verdict whose adversarial embedding the concrete
    /// model does *not* misclassify.
    SpuriousCounterexample,
}

/// Concrete margin of `logits` (row 0) for `label`: `y_label − max_{j≠label}`.
fn concrete_margin(logits: &Matrix, label: usize) -> f64 {
    let row = logits.row(0);
    let worst = row
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != label)
        .map(|(_, &v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    row[label] - worst
}

/// Runs one embedding through the concrete encoder and classifier head.
fn forward_from_embedding(
    model: &TransformerClassifier,
    net: &VerifiableTransformer,
    x0: Matrix,
) -> Matrix {
    let mut x = x0;
    for layer in &net.layers {
        x = layer.forward(&x, net.layer_norm, net.head_dim);
    }
    model.classify(&x)
}

/// Runs the refinement ladder on one query and fuzzes its verdict.
///
/// `Certified` answers get `samples` concrete containment probes
/// (alternating interior and extreme noise points) plus randomized attacks
/// with `attack_samples` probes at several fractions of the certified
/// radius; `Falsified` answers must carry a genuine counterexample.
/// `Unknown` answers claim nothing falsifiable here and are vacuously
/// consistent. Returns every violation found.
#[allow(clippy::too_many_arguments)]
pub fn check_refined_certificates(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    cfg: &RefineConfig,
    samples: usize,
    attack_samples: usize,
    rng: &mut impl Rng,
) -> Vec<RefineViolation> {
    let label = model.predict(tokens);
    let report = refine_certify(
        model,
        tokens,
        position,
        radius,
        p,
        label,
        cfg,
        Deadline::none(),
    );
    let level = report.level.as_str().to_string();
    let mut violations = Vec::new();
    match report.outcome {
        RefineOutcome::Certified { margin } => {
            let net = VerifiableTransformer::from(model);
            let emb = model.embed(tokens);
            let region = t1_region(&emb, position, radius, p);
            for s in 0..samples {
                let (phi, eps) = if s % 2 == 0 {
                    region.sample_extreme_noise(rng)
                } else {
                    region.sample_noise(rng)
                };
                let x0 = Matrix::from_vec(emb.rows(), emb.cols(), region.evaluate(&phi, &eps))
                    .expect("evaluate yields rows*cols values");
                let logits = forward_from_embedding(model, &net, x0);
                let cm = concrete_margin(&logits, label);
                // The certified margin is a sound lower bound in real
                // arithmetic; concrete forward passes round differently,
                // so allow the usual relative float slack.
                let tol = 1e-7 * (1.0 + cm.abs());
                if cm < 0.0 {
                    violations.push(RefineViolation {
                        radius,
                        level: level.clone(),
                        kind: RefineViolationKind::ConcreteEscape {
                            concrete_margin: cm,
                            certified_margin: margin,
                        },
                    });
                } else if cm < margin - tol {
                    violations.push(RefineViolation {
                        radius,
                        level: level.clone(),
                        kind: RefineViolationKind::MarginOverclaim {
                            concrete_margin: cm,
                            certified_margin: margin,
                        },
                    });
                }
            }
            for frac in [0.5, 0.9, 0.99] {
                let attack_radius = frac * radius;
                if attack_t1(
                    model,
                    tokens,
                    position,
                    attack_radius,
                    p,
                    attack_samples,
                    rng,
                )
                .is_some()
                {
                    violations.push(RefineViolation {
                        radius,
                        level: level.clone(),
                        kind: RefineViolationKind::AttackBreaksCertificate { attack_radius },
                    });
                }
            }
        }
        RefineOutcome::Falsified {
            adversarial_example,
        } => {
            let net = VerifiableTransformer::from(model);
            let logits = forward_from_embedding(model, &net, adversarial_example);
            // A strictly positive margin means the true label still wins —
            // the "counterexample" does not misclassify. (An exact tie is
            // argmax-order dependent and not flagged.)
            if concrete_margin(&logits, label) > 0.0 {
                violations.push(RefineViolation {
                    radius,
                    level,
                    kind: RefineViolationKind::SpuriousCounterexample,
                });
            }
        }
        RefineOutcome::Unknown { .. } => {}
    }
    violations
}
