//! Resume-identity gate: warm propagation resumed from a layer snapshot
//! must be bitwise identical to the cold start it claims to shortcut.
//!
//! The serving layer's cross-request state cache (`crates/serve`) stores
//! the zonotope after every encoder layer and resumes warm queries with
//! [`propagate_suffix_snapshots_deadline_probed`] at `start_layer = k + 1`.
//! Its entire soundness story is one identity: replaying layers
//! `k+1..n` from the post-layer-`k` snapshot yields the same logits —
//! bit for bit — as running all `n` layers from the input region. This
//! module falsifies that identity directly over randomized models,
//! norms and verifier configurations:
//!
//! * a cold run captures every layer-boundary snapshot plus the final
//!   logits;
//! * for every `k`, a warm run resumes from snapshot `k` and must
//!   reproduce the cold suffix snapshots *and* the cold logits exactly
//!   (`f64::to_bits` equality, not approximate);
//! * resuming at `start_layer = 0` from the input region must match the
//!   plain propagation, pinning the suffix entry point's degenerate case.
//!
//! Any surviving difference is a [`ResumeViolation`] — it would mean a
//! warm certificate can diverge from the cold answer the client was
//! promised.

use deept_core::{PNorm, Zonotope};
use deept_nn::transformer::TransformerClassifier;
use deept_telemetry::NoopProbe;
use deept_verifier::deadline::Deadline;
use deept_verifier::deept::{
    propagate_suffix_snapshots_deadline_probed, propagate_with_snapshots, DeepTConfig,
};
use deept_verifier::network::{t1_region, VerifiableTransformer};

use deept_verifier::deept::SoundnessProbe;

use crate::containment::SnapshotCollector;

/// Collects suffix snapshots keyed by their absolute layer index (the
/// shared [`SnapshotCollector`] insists on layers arriving from `0`, which
/// a warm resume starting mid-stack violates by design).
#[derive(Default)]
struct SuffixCollector {
    layers: Vec<(usize, Zonotope)>,
}

impl SoundnessProbe for SuffixCollector {
    fn layer_output(&mut self, i: usize, z: &Zonotope) {
        self.layers.push((i, z.clone()));
    }
}

/// A warm resume that failed to reproduce its cold run bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeViolation {
    /// The layer the warm run started at (`0` = resumed from the input).
    pub start_layer: usize,
    /// What diverged.
    pub kind: ResumeViolationKind,
}

/// The first divergence between a cold run and a warm resume.
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeViolationKind {
    /// The warm logits zonotope differs from the cold one.
    LogitsMismatch {
        /// First logit index whose interval differs.
        index: usize,
        /// Cold interval at that index.
        cold: (f64, f64),
        /// Warm interval at that index.
        warm: (f64, f64),
    },
    /// An intermediate suffix snapshot differs from the cold snapshot at
    /// the same layer (caught before the logits, pinpointing the layer).
    SnapshotMismatch {
        /// The layer whose post-state diverged.
        layer: usize,
    },
    /// The warm run produced a different number of suffix snapshots than
    /// the cold run has left after the resume point.
    SnapshotCountMismatch {
        /// Snapshots the cold run recorded past the resume point.
        expected: usize,
        /// Snapshots the warm run recorded.
        got: usize,
    },
}

/// `true` iff two zonotopes are identical down to the bit pattern of every
/// centre and generator coefficient. Stricter than `PartialEq` in both
/// directions: `-0.0` and `0.0` count as different, and two identical
/// NaN payloads count as equal (derived `PartialEq` would reject them).
fn bitwise_eq(a: &Zonotope, b: &Zonotope) -> bool {
    fn bits_eq(x: &[f64], y: &[f64]) -> bool {
        x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
    }
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.p() == b.p()
        && bits_eq(a.center(), b.center())
        && bits_eq(a.phi().as_slice(), b.phi().as_slice())
        && bits_eq(
            a.eps_dense_matrix().as_slice(),
            b.eps_dense_matrix().as_slice(),
        )
}

fn logits_mismatch(start_layer: usize, cold: &Zonotope, warm: &Zonotope) -> ResumeViolation {
    let (clo, chi) = cold.bounds();
    let (wlo, whi) = warm.bounds();
    let index = (0..clo.len().min(wlo.len()))
        .find(|&i| clo[i].to_bits() != wlo[i].to_bits() || chi[i].to_bits() != whi[i].to_bits())
        .unwrap_or(0);
    ResumeViolation {
        start_layer,
        kind: ResumeViolationKind::LogitsMismatch {
            index,
            cold: (
                clo.get(index).copied().unwrap_or(f64::NAN),
                chi.get(index).copied().unwrap_or(f64::NAN),
            ),
            warm: (
                wlo.get(index).copied().unwrap_or(f64::NAN),
                whi.get(index).copied().unwrap_or(f64::NAN),
            ),
        },
    }
}

/// Runs one cold propagation and then resumes from every layer boundary
/// (and from the input itself), asserting each warm run is bitwise
/// identical to the cold run. Returns all divergences found.
pub fn check_resume_identity(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    cfg: &DeepTConfig,
) -> Vec<ResumeViolation> {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let region = t1_region(&emb, position, radius, p);

    let mut cold = SnapshotCollector::default();
    let cold_logits = propagate_with_snapshots(&net, &region, cfg, &mut cold);

    // Non-finite states are outside the resume contract: the serving
    // cache refuses to store them (`Zonotope::has_non_finite`), because
    // inf/NaN arithmetic need not replay deterministically. A cold run
    // that blows up is a precision problem, not a resume problem.
    if cold_logits.has_non_finite() || cold.layers.iter().any(Zonotope::has_non_finite) {
        return Vec::new();
    }

    let mut violations = Vec::new();

    // Degenerate resume: start_layer = 0 from the input region must be the
    // plain propagation, snapshots included.
    let starts: Vec<(usize, &Zonotope)> = std::iter::once((0usize, &region))
        .chain(cold.layers.iter().enumerate().map(|(k, z)| (k + 1, z)))
        .collect();

    for (start, state) in starts {
        let mut warm = SuffixCollector::default();
        let warm_logits = match propagate_suffix_snapshots_deadline_probed(
            &net,
            state,
            cfg,
            start,
            0,
            Deadline::none(),
            &NoopProbe,
            &mut warm,
        ) {
            Ok(z) => z,
            Err(_) => unreachable!("Deadline::none() never expires"),
        };

        // The warm run must replay exactly the layers the cold run had
        // left, producing the same snapshots…
        let expected = &cold.layers[start..];
        if warm.layers.len() != expected.len() {
            violations.push(ResumeViolation {
                start_layer: start,
                kind: ResumeViolationKind::SnapshotCountMismatch {
                    expected: expected.len(),
                    got: warm.layers.len(),
                },
            });
        } else if let Some(layer) =
            warm.layers
                .iter()
                .zip(expected)
                .enumerate()
                .find_map(|(j, ((i, w), c))| {
                    (*i != start + j || !bitwise_eq(w, c)).then_some(start + j)
                })
        {
            violations.push(ResumeViolation {
                start_layer: start,
                kind: ResumeViolationKind::SnapshotMismatch { layer },
            });
        }

        // …and the same logits, bit for bit.
        if !bitwise_eq(&warm_logits, &cold_logits) {
            violations.push(logits_mismatch(start, &cold_logits, &warm_logits));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_nn::transformer::{LayerNormKind, TransformerConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(ln: LayerNormKind) -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 11,
                max_len: 5,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 12,
                num_layers: 2,
                num_classes: 2,
                layer_norm: ln,
            },
            &mut rng,
        )
    }

    #[test]
    fn resume_identity_holds_on_clean_models() {
        for ln in [LayerNormKind::NoStd, LayerNormKind::Std { epsilon: 1e-5 }] {
            let m = model(ln);
            for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
                let v = check_resume_identity(&m, &[1, 2, 3], 1, 0.05, p, &DeepTConfig::fast(4000));
                assert!(v.is_empty(), "unexpected resume divergence: {v:?}");
            }
        }
    }

    #[test]
    fn a_perturbed_snapshot_is_detected() {
        // Resuming from a *wrong* state must not silently agree: feed the
        // checker a model whose suffix we resume with a corrupted snapshot
        // by comparing two different models' runs manually.
        let m = model(LayerNormKind::NoStd);
        let net = VerifiableTransformer::from(&m);
        let emb = m.embed(&[1, 2, 3]);
        let region = t1_region(&emb, 1, 0.05, PNorm::Linf);
        let cfg = DeepTConfig::fast(4000);
        let mut cold = SnapshotCollector::default();
        let cold_logits = propagate_with_snapshots(&net, &region, &cfg, &mut cold);

        // Corrupt the first snapshot and resume from it.
        let bad = &cold.layers[0];
        let mut warm = SuffixCollector::default();
        let shifted = {
            // Shift the region slightly instead: a genuinely different
            // state must produce different logits.
            let other = t1_region(&emb, 1, 0.051, PNorm::Linf);
            let mut c2 = SnapshotCollector::default();
            let _ = propagate_with_snapshots(&net, &other, &cfg, &mut c2);
            c2.layers[0].clone()
        };
        let warm_logits = propagate_suffix_snapshots_deadline_probed(
            &net,
            &shifted,
            &cfg,
            1,
            0,
            Deadline::none(),
            &NoopProbe,
            &mut warm,
        )
        .expect("no deadline");
        assert!(
            !bitwise_eq(&warm_logits, &cold_logits),
            "a different snapshot must yield different logits"
        );
        // Sanity: the honest snapshot still matches.
        let mut warm2 = SuffixCollector::default();
        let honest = propagate_suffix_snapshots_deadline_probed(
            &net,
            bad,
            &cfg,
            1,
            0,
            Deadline::none(),
            &NoopProbe,
            &mut warm2,
        )
        .expect("no deadline");
        assert!(bitwise_eq(&honest, &cold_logits));
    }
}
