//! Precision nesting: `f32` generator storage must only widen bounds.
//!
//! `DEEPT_PREC=f32` compresses ε generator blocks to `f32` with outward
//! error accounting — round-to-nearest plus a fresh slack symbol for
//! existing coefficients, round-away-from-zero for fresh appends, and an
//! `n·ε` widening of the ℓ1 row scans. Every individual step encloses its
//! `f64` counterpart, so the final logits interval computed in `f32` mode
//! must *contain* the `f64` reference interval (up to a relative
//! floating-point tolerance for the differing relaxation pivots the wider
//! intermediate intervals induce). A `f32` bound strictly inside the `f64`
//! reference would mean the compression claimed precision it does not
//! have — the exact failure mode the outward-rounding design exists to
//! prevent.

use deept_core::eps;
use deept_core::PNorm;
use deept_nn::transformer::TransformerClassifier;
use deept_verifier::deept::{propagate_with_snapshots, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};

use crate::containment::SnapshotCollector;

/// A final-logit bound where the `f32` interval failed to contain the
/// `f64` reference interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionViolation {
    /// Flat logit index.
    pub index: usize,
    /// `f64` reference interval.
    pub lo64: f64,
    /// `f64` reference interval.
    pub hi64: f64,
    /// `f32`-mode interval.
    pub lo32: f64,
    /// `f32`-mode interval.
    pub hi32: f64,
    /// How far inside the reference the `f32` bound sits (beyond
    /// tolerance).
    pub shrinkage: f64,
}

/// Relative tolerance for the nesting comparison. The two modes pick
/// slightly different relaxation pivots (λ, μ are computed from the
/// already-widened `f32` intermediate bounds), so exact pointwise nesting
/// of the final intervals is not a theorem — but any real shrinkage from
/// unsound rounding is far larger than last-bit pivot noise.
fn tol(v: f64) -> f64 {
    1e-9 * (1.0 + v.abs())
}

/// Propagates one instance twice — forcing `f64` then `f32` generator
/// storage — and checks that every final-logit `f32` interval contains the
/// `f64` reference interval. Restores the environment-default precision
/// before returning. The caller must hold
/// `deept_tensor::parallel::test_lock()`-style exclusivity if tests run
/// concurrently; the fuzz CLI is single-threaded per seed.
pub fn check_f32_nesting(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    cfg: &DeepTConfig,
) -> Vec<PrecisionViolation> {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let region = t1_region(&emb, position, radius, p);

    let bounds_under = |f32_mode: bool| {
        eps::set_force_f32(Some(f32_mode));
        let mut snaps = SnapshotCollector::default();
        let _ = propagate_with_snapshots(&net, &region, cfg, &mut snaps);
        snaps.logits.as_ref().map(|z| z.bounds())
    };
    let ref64 = bounds_under(false);
    let got32 = bounds_under(true);
    eps::set_force_f32(None);

    let mut violations = Vec::new();
    let (Some((lo64, hi64)), Some((lo32, hi32))) = (ref64, got32) else {
        return violations;
    };
    for k in 0..lo64.len() {
        // A poisoned (NaN) f32 bound fails closed: NaN comparisons are
        // false, so it never flags; ±∞ f32 bounds contain everything.
        let t = tol(lo64[k]).max(tol(hi64[k]));
        let shrink_lo = lo32[k] - lo64[k]; // > 0 ⇒ f32 lower bound too tight
        let shrink_hi = hi64[k] - hi32[k]; // > 0 ⇒ f32 upper bound too tight
        let shrinkage = shrink_lo.max(shrink_hi) - t;
        if shrinkage > 0.0 {
            violations.push(PrecisionViolation {
                index: k,
                lo64: lo64[k],
                hi64: hi64[k],
                lo32: lo32[k],
                hi32: hi32[k],
                shrinkage,
            });
        }
    }
    violations
}
