//! Property test: one encoder layer's abstract output contains 256 random
//! concrete points, for every perturbation norm and at 1 and 4 worker
//! threads (the parallel kernels must not change what is contained).

use deept_core::PNorm;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_soundness::containment::SnapshotCollector;
use deept_tensor::{parallel, Matrix};
use deept_verifier::deept::{propagate_with_snapshots, DeepTConfig};
use deept_verifier::network::t1_region;
use deept_verifier::network::VerifiableTransformer;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn one_layer_model(ln: LayerNormKind, model_seed: u64) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(model_seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 13,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: 1,
            num_classes: 2,
            layer_norm: ln,
        },
        &mut rng,
    )
}

fn check_layer_containment(
    ln: LayerNormKind,
    p: PNorm,
    threads: usize,
    model_seed: u64,
    noise_seed: u64,
    radius: f64,
) -> Result<(), TestCaseError> {
    let model = one_layer_model(ln, model_seed);
    let net = VerifiableTransformer::from(&model);
    let tokens = [1usize, 5, 9, 2];
    let emb = model.embed(&tokens);
    let region = t1_region(&emb, 1, radius, p);

    parallel::set_thread_override(Some(threads));
    let mut snaps = SnapshotCollector::default();
    let _ = propagate_with_snapshots(&net, &region, &DeepTConfig::fast(4000), &mut snaps);
    parallel::set_thread_override(None);

    let layer_z = &snaps.layers[0];
    let (lo, hi) = layer_z.bounds();
    let mut rng = ChaCha8Rng::seed_from_u64(noise_seed);
    for s in 0..256 {
        let (phi, eps) = if s % 2 == 0 {
            region.sample_noise(&mut rng)
        } else {
            region.sample_extreme_noise(&mut rng)
        };
        let x0 = Matrix::from_vec(emb.rows(), emb.cols(), region.evaluate(&phi, &eps))
            .expect("evaluate yields rows*cols values");
        let y = net.layers[0].forward(&x0, net.layer_norm, net.head_dim);
        for (k, &v) in y.as_slice().iter().enumerate() {
            let tol = 1e-7 * (1.0 + v.abs());
            prop_assert!(
                v >= lo[k] - tol && v <= hi[k] + tol,
                "{ln:?}/{p:?}/{threads} threads: activation {k} = {v} outside [{}, {}]",
                lo[k],
                hi[k]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// 256 concrete points through one encoder layer stay inside the
    /// abstract layer output, for all p ∈ {1, 2, ∞} × threads ∈ {1, 4} and
    /// both layer-norm flavours.
    #[test]
    fn encoder_layer_contains_256_points(
        model_seed in 0u64..1000,
        noise_seed in 0u64..1000,
        radius in 0.005f64..0.2,
    ) {
        let _g = parallel::test_lock();
        for ln in [LayerNormKind::NoStd, LayerNormKind::Std { epsilon: 1e-5 }] {
            for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
                for threads in [1usize, 4] {
                    check_layer_containment(ln, p, threads, model_seed, noise_seed, radius)?;
                }
            }
        }
    }
}
