//! Regression tests for soundness bugs found by the differential fuzzer.
//!
//! Every named violation the fuzzer surfaced is pinned here on its original
//! trigger, so the fix cannot silently regress.

use deept_core::elementwise::{reciprocal_relaxation, sqrt_relaxation, Activation};
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_soundness::containment::SnapshotCollector;
use deept_soundness::{check_relaxations, check_transformers, run, FuzzConfig};
use deept_verifier::deept::{propagate, propagate_with_snapshots, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(ln: LayerNormKind, layers: usize) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 13,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: layers,
            num_classes: 2,
            layer_norm: ln,
        },
        &mut rng,
    )
}

/// Fuzzer finding #1 (degenerate-interval midpoint collapse): intervals with
/// `0 < u − l < 1e-12` returned the midpoint value as an exact constant,
/// excluding both endpoint values. Original trigger: `Exp` on
/// `[2.426902651674089, 2.4269026516744354]` — `exp(u)` exceeded the
/// "exact" band by ≈ 2e-12 absolute. The fixed relaxation must cover both
/// endpoints pointwise, with zero tolerance.
#[test]
fn degenerate_exp_interval_covers_endpoints() {
    let (l, u) = (2.426902651674089_f64, 2.4269026516744354_f64);
    assert!(u > l && u - l < 1e-12, "trigger must stay degenerate");
    let r = Activation::Exp.relaxation(l, u);
    for x in [l, u] {
        let y = x.exp();
        assert!(
            r.lambda * x + r.mu - r.beta <= y && y <= r.lambda * x + r.mu + r.beta,
            "exp({x}) = {y} escapes the degenerate band"
        );
    }
}

/// Fuzzer finding #2 (reciprocal/√ domain guard): `l ≤ 0` used to panic
/// mid-certification (an `assert!`); it now poisons the relaxation so the
/// verifier fails closed. `l = f64::MIN_POSITIVE` is in-domain and must
/// still produce a finite sound band.
#[test]
fn nonpositive_reciprocal_and_sqrt_poison_instead_of_panicking() {
    for l in [0.0, -f64::MIN_POSITIVE, -1e-15, -0.5] {
        assert!(reciprocal_relaxation(l, l + 1.0).mu.is_nan(), "l = {l}");
        assert!(sqrt_relaxation(l, l + 1.0).mu.is_nan(), "l = {l}");
    }
    assert!(reciprocal_relaxation(f64::MIN_POSITIVE, 1.0).mu.is_finite());
    assert!(sqrt_relaxation(f64::MIN_POSITIVE, 1.0).mu.is_finite());
}

/// The micro-checker families run clean on a fixed seed (they found the two
/// bugs above before the fixes).
#[test]
fn microcheckers_clean_on_fixed_seed() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let violations = check_relaxations(60, &mut rng);
    assert!(violations.is_empty(), "{violations:?}");
    let violations = check_transformers(20, &mut rng);
    assert!(violations.is_empty(), "{violations:?}");
}

/// A full (small) fuzzing run is clean end to end: micro-checks,
/// differential containment on both layer-norm flavours and all norms, and
/// attack consistency.
#[test]
fn full_fuzz_run_clean_on_fixed_seed() {
    let report = run(&FuzzConfig { seed: 1, cases: 24 });
    assert_eq!(
        report.total_violations(),
        0,
        "fuzz run found violations: {}",
        report.summary()
    );
    assert!(report.containment_samples > 0 && report.attack_instances > 0);
}

/// The snapshot probe only observes: a propagation with a
/// [`SnapshotCollector`] attached returns logits bitwise identical to the
/// plain path, and snapshots one state per encoder layer.
#[test]
fn snapshots_leave_propagation_bitwise_identical() {
    for ln in [LayerNormKind::NoStd, LayerNormKind::Std { epsilon: 1e-5 }] {
        let model = tiny_model(ln, 2);
        let net = VerifiableTransformer::from(&model);
        let region = t1_region(&model.embed(&[1, 5, 9, 2]), 1, 0.05, deept_core::PNorm::L2);
        let cfg = DeepTConfig::fast(4000);
        let plain = propagate(&net, &region, &cfg);
        let mut snaps = SnapshotCollector::default();
        let probed = propagate_with_snapshots(&net, &region, &cfg, &mut snaps);
        assert_eq!(plain, probed, "snapshots must not perturb the result");
        assert_eq!(snaps.layers.len(), 2, "one snapshot per encoder layer");
        assert_eq!(
            snaps.logits.as_ref(),
            Some(&plain),
            "logits snapshot is the returned zonotope"
        );
        assert!(snaps.input.is_some());
    }
}
