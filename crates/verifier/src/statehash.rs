//! Content hashing for the cross-request zonotope state cache
//! (`crates/serve`).
//!
//! The hashes here are an *index*, never an authority: resuming a
//! propagation from a cached layer state is sound only if the cached run's
//! input region, verifier configuration, network and norm are exactly the
//! ones of the new query, so the serve cache stores the full region and
//! config next to every snapshot and re-checks them with `PartialEq` on
//! every hit. A hash collision therefore costs a cache miss, not a wrong
//! certificate.
//!
//! Hashing is over the *bit patterns* of every `f64` (`to_bits`), matching
//! the bitwise-identity discipline of the warm path: two regions hash (and
//! compare) equal exactly when cold propagation from either is bit-for-bit
//! the same computation. `-0.0` vs `0.0` and distinct NaN payloads hash
//! differently — deliberately, since they are different inputs to the
//! float pipeline.

use deept_core::{PNorm, Zonotope};

use crate::deept::DeepTConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over 8-byte words: tiny, dependency-free, deterministic across
/// processes (unlike `DefaultHasher`, whose keys are randomized per
/// process), so hashes can be persisted or compared across shard processes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds one 64-bit word, byte by byte.
    pub fn write_u64(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

fn norm_tag(p: PNorm) -> u64 {
    match p {
        PNorm::L1 => 1,
        PNorm::L2 => 2,
        PNorm::Linf => 3,
    }
}

/// Content hash of an input region: shape, norm, and the bit patterns of
/// the centre, `φ` and logical `ε` coefficients. Regions that compare
/// equal (`PartialEq`) hash equal; the converse is checked by the cache,
/// not assumed.
pub fn region_hash(z: &Zonotope) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(z.rows() as u64);
    h.write_u64(z.cols() as u64);
    h.write_u64(z.num_phi() as u64);
    h.write_u64(z.num_eps() as u64);
    h.write_u64(norm_tag(z.p()));
    for &v in z.center() {
        h.write_u64(v.to_bits());
    }
    for &v in z.phi().as_slice() {
        h.write_u64(v.to_bits());
    }
    // The logical ε matrix, not the storage layout: dense and blocked
    // stores of the same coefficients must hash identically, because
    // propagation from them is identical.
    for &v in z.eps_dense_matrix().as_slice() {
        h.write_u64(v.to_bits());
    }
    h.finish()
}

/// Content hash of a verifier configuration. `DeepTConfig` is a small
/// `Copy` struct of enums, flags and an optional budget; its `Debug`
/// rendering is a faithful, deterministic serialization of every field, so
/// hashing it covers exactly the inputs that select the abstract
/// transformers. As with [`region_hash`], equality is re-checked by the
/// cache with `PartialEq`.
pub fn config_hash(cfg: &DeepTConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(format!("{cfg:?}").as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_tensor::Matrix;

    fn region(bump: f64, p: PNorm) -> Zonotope {
        let center = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 + bump);
        Zonotope::from_lp_ball(&center, 0.5, p, &[1])
    }

    #[test]
    fn equal_regions_hash_equal() {
        assert_eq!(
            region_hash(&region(0.0, PNorm::L2)),
            region_hash(&region(0.0, PNorm::L2))
        );
    }

    #[test]
    fn distinct_regions_hash_differently() {
        let base = region_hash(&region(0.0, PNorm::L2));
        assert_ne!(base, region_hash(&region(1e-12, PNorm::L2)));
        assert_ne!(base, region_hash(&region(0.0, PNorm::Linf)));
    }

    #[test]
    fn sign_of_zero_is_significant() {
        let a = Zonotope::constant(&Matrix::full(1, 2, 0.0), PNorm::L2);
        let b = Zonotope::constant(&Matrix::full(1, 2, -0.0), PNorm::L2);
        assert_ne!(region_hash(&a), region_hash(&b));
    }

    #[test]
    fn config_hash_separates_variants() {
        let fast = config_hash(&DeepTConfig::fast(1000));
        assert_eq!(fast, config_hash(&DeepTConfig::fast(1000)));
        assert_ne!(fast, config_hash(&DeepTConfig::fast(1001)));
        assert_ne!(fast, config_hash(&DeepTConfig::precise(1000)));
        assert_ne!(fast, config_hash(&DeepTConfig::combined(1000)));
    }
}
