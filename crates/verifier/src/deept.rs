//! The DeepT verifier: propagates a Multi-norm Zonotope through an encoder
//! Transformer (§5), in its Fast, Precise and Combined configurations.

use deept_core::dot::{parallel_stats_since, zono_matmul_probed, DotConfig, DotVariant};
use deept_core::reduce::reduce_eps_probed;
use deept_core::softmax::{softmax_rows_probed, SoftmaxConfig};
use deept_core::{NormOrder, Zonotope};
use deept_nn::transformer::{EncoderLayer, LayerNorm, LayerNormKind};
use deept_telemetry::{NoopProbe, Probe, SpanKind};
use deept_tensor::{parallel, Matrix};

use crate::deadline::{Deadline, DeadlineExceeded};
use crate::network::{margins_from_zonotope_deadline, CertResult, VerifiableTransformer};

/// Configuration of the DeepT verifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepTConfig {
    /// Dot-product transformer configuration (Fast / Precise, norm order).
    pub dot: DotConfig,
    /// Softmax configuration (sum refinement on/off).
    pub softmax: SoftmaxConfig,
    /// ℓ∞ noise-symbol budget enforced at every layer input (§5.1 / §6.1);
    /// `None` disables reduction.
    pub reduction_budget: Option<usize>,
    /// Use the Precise dot product only in the last layer and Fast elsewhere
    /// (the Combined verifier of Appendix A.6). When set, `dot.variant`
    /// applies to the last layer and Fast is used before it.
    pub precise_last_layer_only: bool,
}

impl DeepTConfig {
    /// DeepT-Fast with the paper's defaults (ℓ∞-first dual-norm order,
    /// softmax sum refinement on).
    pub fn fast(reduction_budget: usize) -> Self {
        DeepTConfig {
            dot: DotConfig::fast(),
            softmax: SoftmaxConfig::default(),
            reduction_budget: Some(reduction_budget),
            precise_last_layer_only: false,
        }
    }

    /// DeepT-Precise: the pairwise ε–ε dot-product bound everywhere.
    pub fn precise(reduction_budget: usize) -> Self {
        DeepTConfig {
            dot: DotConfig::precise(),
            softmax: SoftmaxConfig::default(),
            reduction_budget: Some(reduction_budget),
            precise_last_layer_only: false,
        }
    }

    /// The Combined verifier of Appendix A.6: Fast in all layers except the
    /// last, Precise in the last.
    pub fn combined(reduction_budget: usize) -> Self {
        DeepTConfig {
            dot: DotConfig::precise(),
            softmax: SoftmaxConfig::default(),
            reduction_budget: Some(reduction_budget),
            precise_last_layer_only: true,
        }
    }

    /// Overrides the dual-norm application order (§6.5 ablation).
    pub fn with_norm_order(mut self, order: NormOrder) -> Self {
        self.dot.order = order;
        self
    }

    /// Disables or re-enables the softmax sum refinement (Appendix A.5
    /// ablation).
    pub fn with_softmax_refinement(mut self, on: bool) -> Self {
        self.softmax = if on {
            SoftmaxConfig::default()
        } else {
            SoftmaxConfig::without_refinement()
        };
        self
    }
}

/// Observer of the per-stage abstract states of a propagation, used by the
/// differential containment harness (the `deept-soundness` crate).
///
/// Unlike [`deept_telemetry::Probe`] — which lives *below* `deept-core` in
/// the crate graph and can therefore only see scalar statistics — this trait
/// receives the [`Zonotope`]s themselves, so a harness can compare each
/// abstract state against the matching concrete activation. Observers only
/// read: every hook takes `&Zonotope` immediately after the state is
/// computed, on the same value the propagation continues with, so the
/// returned logits are bitwise identical whether or not snapshots are taken.
pub trait SoundnessProbe {
    /// The input region, before any encoder layer.
    fn input(&mut self, _z: &Zonotope) {}
    /// The abstract state after encoder layer `i` (its input reduction, if
    /// any, has already been applied — reduction only loosens, so the layer
    /// output still contains every concrete layer output).
    fn layer_output(&mut self, _i: usize, _z: &Zonotope) {}
    /// The final logits zonotope (`1 × classes`). Also called on the
    /// non-finite early exit, with the unbounded logits placeholder.
    fn logits(&mut self, _z: &Zonotope) {}
}

/// A [`SoundnessProbe`] that drops every snapshot (the default path).
pub struct NoSnapshots;

impl SoundnessProbe for NoSnapshots {}

/// Propagates an input-region zonotope through the whole network and returns
/// the logits zonotope (`1 × classes`).
pub fn propagate(net: &VerifiableTransformer, input: &Zonotope, cfg: &DeepTConfig) -> Zonotope {
    propagate_probed(net, input, cfg, &NoopProbe)
}

/// [`propagate`] with per-stage zonotope snapshots delivered to `snap`; see
/// [`SoundnessProbe`]. The returned logits are bitwise identical to
/// [`propagate`].
pub fn propagate_with_snapshots(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    snap: &mut dyn SoundnessProbe,
) -> Zonotope {
    match propagate_inner(net, input, cfg, Deadline::none(), &NoopProbe, snap) {
        Ok(out) => out,
        Err(DeadlineExceeded) => unreachable!("Deadline::none() never expires"),
    }
}

/// [`propagate_with_snapshots`] with a cooperative [`Deadline`], polled
/// between encoder layers. Used by the refinement ladder (`crates/refine`)
/// to capture resumable layer-boundary states during a deadline-bounded
/// pass. A run that completes is bitwise identical to
/// [`propagate_with_snapshots`].
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired between layers.
pub fn propagate_snapshots_deadline(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    deadline: Deadline,
    snap: &mut dyn SoundnessProbe,
) -> Result<Zonotope, DeadlineExceeded> {
    propagate_inner(net, input, cfg, deadline, &NoopProbe, snap)
}

/// [`propagate`] with telemetry: every encoder layer, abstract transformer
/// and noise-symbol reduction reports a span to `probe`, with zonotope
/// precision stats and thread-pool counters (workers, tasks, busy time)
/// computed only when the probe is enabled.
///
/// The probe only observes — the returned logits zonotope is bitwise
/// identical to the unprobed result (see `tests/telemetry_trace.rs`).
pub fn propagate_probed(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    probe: &dyn Probe,
) -> Zonotope {
    match propagate_deadline_probed(net, input, cfg, Deadline::none(), probe) {
        Ok(out) => out,
        Err(DeadlineExceeded) => unreachable!("Deadline::none() never expires"),
    }
}

/// [`propagate_probed`] with a cooperative [`Deadline`], polled between
/// encoder layers (and before pooling) so an over-budget query unwinds at a
/// layer boundary instead of running to completion.
///
/// With `Deadline::none()` the result is bitwise identical to
/// [`propagate_probed`]; the checks never read the clock in that case.
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired between layers.
pub fn propagate_deadline_probed(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    deadline: Deadline,
    probe: &dyn Probe,
) -> Result<Zonotope, DeadlineExceeded> {
    propagate_suffix_deadline_probed(net, input, cfg, 0, 0, deadline, probe)
}

/// [`propagate_deadline_probed`] generalized for abstraction refinement
/// (`crates/refine`): propagation starts at encoder layer `start_layer`
/// (`0` runs the whole network; `k` resumes from a state snapshotted after
/// layer `k - 1`, as captured by [`propagate_with_snapshots`]), and the
/// first `protect_eps` noise-symbol columns of `input` are protected from
/// every per-layer reduction, so their column indices survive unchanged all
/// the way to the logits. The protected prefix lets a refinement loop read
/// per-symbol margin gradients directly off the output zonotope.
///
/// With `start_layer = 0` and `protect_eps = 0` this is bitwise identical
/// to [`propagate_deadline_probed`]. The effective reduction budget is
/// raised to at least `protect_eps` (the reducer cannot drop below the
/// protected prefix).
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired between layers.
pub fn propagate_suffix_deadline_probed(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    start_layer: usize,
    protect_eps: usize,
    deadline: Deadline,
    probe: &dyn Probe,
) -> Result<Zonotope, DeadlineExceeded> {
    propagate_suffix_snapshots_deadline_probed(
        net,
        input,
        cfg,
        start_layer,
        protect_eps,
        deadline,
        probe,
        &mut NoSnapshots,
    )
}

/// [`propagate_suffix_deadline_probed`] with per-stage zonotope snapshots
/// delivered to `snap` (see [`SoundnessProbe`]). This is the state-cache
/// entry point of `crates/serve`: a cold run captures every layer-boundary
/// state through `snap`, and a warm run resumes from a cached state by
/// passing it as `input` with `start_layer` set to the layer after the
/// snapshot. Because `snap` only reads, and `start_layer = k + 1` replays
/// exactly the layers the cold run had left, the logits are bitwise
/// identical to the cold-start result.
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired between layers.
#[allow(clippy::too_many_arguments)]
pub fn propagate_suffix_snapshots_deadline_probed(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    start_layer: usize,
    protect_eps: usize,
    deadline: Deadline,
    probe: &dyn Probe,
    snap: &mut dyn SoundnessProbe,
) -> Result<Zonotope, DeadlineExceeded> {
    probe.span_enter(SpanKind::Propagate);
    let par = probe.enabled().then(parallel::snapshot);
    let out = propagate_inner_from(
        net,
        input,
        cfg,
        start_layer,
        protect_eps,
        deadline,
        probe,
        snap,
    );
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    let stats = match &out {
        Ok(z) => probe.enabled().then(|| z.telemetry_stats()),
        Err(_) => None,
    };
    probe.span_exit(SpanKind::Propagate, stats, 0);
    out
}

fn propagate_inner(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    deadline: Deadline,
    probe: &dyn Probe,
    snap: &mut dyn SoundnessProbe,
) -> Result<Zonotope, DeadlineExceeded> {
    propagate_inner_from(net, input, cfg, 0, 0, deadline, probe, snap)
}

#[allow(clippy::too_many_arguments)]
fn propagate_inner_from(
    net: &VerifiableTransformer,
    input: &Zonotope,
    cfg: &DeepTConfig,
    start_layer: usize,
    protect: usize,
    deadline: Deadline,
    probe: &dyn Probe,
    snap: &mut dyn SoundnessProbe,
) -> Result<Zonotope, DeadlineExceeded> {
    let mut x = input.clone();
    snap.input(&x);
    let last = net.layers.len().saturating_sub(1);
    for (i, layer) in net.layers.iter().enumerate().skip(start_layer) {
        // Cancellation checkpoint: between layers, never mid-transformer,
        // so a completed run is unaffected by the deadline's presence.
        deadline.check()?;
        x = layer_step(net, layer, x, i, last, cfg, protect, probe);
        snap.layer_output(i, &x);
        if x.has_non_finite() {
            let unbounded = unbounded_logits(net, &x);
            snap.logits(&unbounded);
            return Ok(unbounded);
        }
    }
    deadline.check()?;
    let logits = pool_logits(net, &x, probe);
    snap.logits(&logits);
    Ok(logits)
}

/// One encoder layer worth of abstract propagation — input reduction plus
/// the layer's transformers, with per-layer telemetry. Shared verbatim by
/// the serial sweep ([`propagate_inner_from`]) and the lockstep batched
/// sweep ([`certify_batch_deadline_probed`]), which is what makes a fused
/// batch member bitwise identical to its serially-certified twin.
#[allow(clippy::too_many_arguments)]
fn layer_step(
    net: &VerifiableTransformer,
    layer: &EncoderLayer,
    x: Zonotope,
    i: usize,
    last: usize,
    cfg: &DeepTConfig,
    protect: usize,
    probe: &dyn Probe,
) -> Zonotope {
    let dot = if cfg.precise_last_layer_only && i != last {
        DotConfig {
            variant: DotVariant::Fast,
            ..cfg.dot
        }
    } else {
        cfg.dot
    };
    // The layer span also covers the input reduction, so per-layer
    // telemetry attributes dropped symbols to the layer they feed.
    probe.span_enter(SpanKind::EncoderLayer(i));
    let par = probe.enabled().then(parallel::snapshot);
    let eps_before = probe.enabled().then(deept_core::eps::snapshot);
    // Noise-symbol reduction at every layer input, before the residual
    // branch splits (§5.1). The budget can never drop below the
    // protected prefix (reduce_eps requires protect ≤ budget).
    let x = if let Some(budget) = cfg.reduction_budget {
        reduce_eps_probed(&x, budget.max(1).max(protect), protect, probe).0
    } else {
        x
    };
    let eps_in = x.num_eps();
    let x = encoder_layer(
        &x,
        layer,
        net.layer_norm,
        net.head_dim,
        dot,
        cfg.softmax,
        probe,
    );
    let created = x.num_eps().saturating_sub(eps_in);
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    if let Some(eps_before) = eps_before {
        probe.eps_storage(deept_core::eps::storage_stats_since(
            &eps_before,
            x.eps_store(),
        ));
    }
    let stats = probe.enabled().then(|| x.telemetry_stats());
    probe.span_exit(SpanKind::EncoderLayer(i), stats, created);
    x
}

/// Bounds blew up (e.g. exp overflow): unbounded logits so certification
/// fails gracefully instead of propagating NaN arithmetic further.
fn unbounded_logits(net: &VerifiableTransformer, x: &Zonotope) -> Zonotope {
    let inf = Matrix::full(1, net.num_classes, f64::INFINITY);
    Zonotope::constant(&inf, x.p())
}

/// Pooling: first output embedding only (Figure 2), then the classifier
/// head.
fn pool_logits(net: &VerifiableTransformer, x: &Zonotope, probe: &dyn Probe) -> Zonotope {
    probe.span_enter(SpanKind::Pooling);
    let par = probe.enabled().then(parallel::snapshot);
    let pooled = x.select_rows(&[0]);
    let hidden = pooled
        .matmul_right(&net.head.wp)
        .add_row_bias(net.head.bp.row(0))
        .tanh();
    let logits = hidden
        .matmul_right(&net.head.wc)
        .add_row_bias(net.head.bc.row(0));
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    let stats = probe.enabled().then(|| logits.telemetry_stats());
    probe.span_exit(SpanKind::Pooling, stats, 0);
    logits
}

/// Certifies that every point of the input region classifies as
/// `true_label`.
pub fn certify(
    net: &VerifiableTransformer,
    input: &Zonotope,
    true_label: usize,
    cfg: &DeepTConfig,
) -> CertResult {
    certify_probed(net, input, true_label, cfg, &NoopProbe)
}

/// [`certify`] with telemetry; see [`propagate_probed`].
pub fn certify_probed(
    net: &VerifiableTransformer,
    input: &Zonotope,
    true_label: usize,
    cfg: &DeepTConfig,
    probe: &dyn Probe,
) -> CertResult {
    match certify_deadline_probed(net, input, true_label, cfg, Deadline::none(), probe) {
        Ok(res) => res,
        Err(DeadlineExceeded) => unreachable!("Deadline::none() never expires"),
    }
}

/// [`certify`] with a cooperative [`Deadline`]: the budget is polled between
/// encoder layers and between per-class margin queries, so an over-budget
/// certification returns [`DeadlineExceeded`] at the next checkpoint instead
/// of running arbitrarily long. A query that completes is bitwise identical
/// to the deadline-free result.
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired at a checkpoint.
pub fn certify_deadline(
    net: &VerifiableTransformer,
    input: &Zonotope,
    true_label: usize,
    cfg: &DeepTConfig,
    deadline: Deadline,
) -> Result<CertResult, DeadlineExceeded> {
    certify_deadline_probed(net, input, true_label, cfg, deadline, &NoopProbe)
}

/// [`certify_deadline`] with telemetry; see [`propagate_deadline_probed`].
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired at a checkpoint.
pub fn certify_deadline_probed(
    net: &VerifiableTransformer,
    input: &Zonotope,
    true_label: usize,
    cfg: &DeepTConfig,
    deadline: Deadline,
    probe: &dyn Probe,
) -> Result<CertResult, DeadlineExceeded> {
    deadline.check()?;
    let logits = propagate_deadline_probed(net, input, cfg, deadline, probe)?;
    let margins = margins_from_zonotope_deadline(&logits, true_label, deadline)?;
    Ok(CertResult::from_margins(margins))
}

/// One member of a fused certification batch: an input region over the same
/// network, its own `true_label`, and its own cooperative [`Deadline`].
pub struct BatchQuery<'a> {
    /// The input region for this member.
    pub input: &'a Zonotope,
    /// The class every point of the region must classify as.
    pub true_label: usize,
    /// Per-member deadline, polled at every layer boundary.
    pub deadline: Deadline,
}

/// Certifies a batch of queries against the same network in one lockstep
/// layer sweep: the outer loop walks encoder layers, the inner loop walks
/// batch members, so the whole batch traverses each layer's weights
/// together (one pass over the model per layer instead of one per member).
///
/// Every member runs exactly the serial per-layer pipeline
/// (reduction → encoder layer, then pooling and per-class margins), so a
/// member's result is **bitwise identical** to
/// [`certify_deadline_probed`] on the same query — members never exchange
/// abstract state, only the sweep order changes. Deadlines stay
/// per-request: each member's deadline is polled at the same layer
/// boundaries as the serial path, and an expired member drops out of the
/// sweep with [`DeadlineExceeded`] while the stragglers finish
/// individually.
pub fn certify_batch_deadline_probed(
    net: &VerifiableTransformer,
    queries: &[BatchQuery<'_>],
    cfg: &DeepTConfig,
    probe: &dyn Probe,
) -> Vec<Result<CertResult, DeadlineExceeded>> {
    certify_batch_resumable(net, queries, None, cfg, probe, &mut NoBatchSnapshots)
}

/// Observer of per-member layer-boundary states during a lockstep batched
/// sweep — the batched counterpart of [`SoundnessProbe`], used by the serve
/// state cache to capture resumable snapshots from fused runs. Hooks only
/// read, so batch results are bitwise identical with or without a sink.
pub trait BatchSnapshotSink {
    /// The abstract state of batch member `member` after encoder layer
    /// `layer` (also called on a non-finite state, right before the member
    /// exits with unbounded logits).
    fn layer_output(&mut self, _member: usize, _layer: usize, _z: &Zonotope) {}
}

/// A [`BatchSnapshotSink`] that drops every snapshot (the default path).
pub struct NoBatchSnapshots;

impl BatchSnapshotSink for NoBatchSnapshots {}

/// [`certify_batch_deadline_probed`] generalized for mid-stack resume: when
/// `starts` is provided, member `m` joins the lockstep sweep at encoder
/// layer `starts[m]` — its `input` must then be the state snapshotted after
/// layer `starts[m] - 1` (as captured by a [`SoundnessProbe`] or a
/// [`BatchSnapshotSink`] on an earlier run over the same region and
/// configuration). `starts[m] = net.layers.len()` skips straight to pooling.
/// With `starts = None` (all zeros) and [`NoBatchSnapshots`] this is exactly
/// [`certify_batch_deadline_probed`].
///
/// Soundness: a resumed member replays precisely the layers the cold run
/// had left, through the same [`layer_step`] pipeline, so its margins are
/// **bitwise identical** to a cold start from layer 0 — provided the caller
/// resumes only from a snapshot of the *exact same* input region, network
/// and config (the serve state cache enforces this by full equality, not
/// hash equality).
///
/// # Panics
///
/// Panics if `starts` is provided with a length different from `queries`,
/// or if any entry exceeds `net.layers.len()`.
pub fn certify_batch_resumable(
    net: &VerifiableTransformer,
    queries: &[BatchQuery<'_>],
    starts: Option<&[usize]>,
    cfg: &DeepTConfig,
    probe: &dyn Probe,
    sink: &mut dyn BatchSnapshotSink,
) -> Vec<Result<CertResult, DeadlineExceeded>> {
    let n = queries.len();
    if let Some(starts) = starts {
        assert_eq!(starts.len(), n, "one start layer per batch member");
        assert!(
            starts.iter().all(|&s| s <= net.layers.len()),
            "start layer out of range"
        );
    }
    let start_of = |m: usize| starts.map_or(0, |s| s[m]);
    // Abstract state per member while it is still propagating; a member
    // leaves the sweep by timing out (slot -> None, result recorded) or by
    // reaching its logits (slot -> None, logits recorded).
    let mut states: Vec<Option<Zonotope>> = Vec::with_capacity(n);
    let mut logits: Vec<Option<Zonotope>> = (0..n).map(|_| None).collect();
    let mut results: Vec<Option<Result<CertResult, DeadlineExceeded>>> =
        (0..n).map(|_| None).collect();
    // Mirrors the serial entry check in `certify_deadline_probed`.
    for q in queries {
        states.push(match q.deadline.check() {
            Ok(()) => Some(q.input.clone()),
            Err(DeadlineExceeded) => None,
        });
    }
    for (state, result) in states.iter().zip(results.iter_mut()) {
        if state.is_none() {
            *result = Some(Err(DeadlineExceeded));
        }
    }
    probe.span_enter(SpanKind::Propagate);
    let last = net.layers.len().saturating_sub(1);
    for (i, layer) in net.layers.iter().enumerate() {
        for (m, q) in queries.iter().enumerate() {
            if i < start_of(m) {
                // Resumed member: its input already is the post-layer-i
                // state of an earlier identical run; it joins the sweep at
                // its start layer.
                continue;
            }
            let Some(x) = states[m].take() else { continue };
            if q.deadline.check().is_err() {
                results[m] = Some(Err(DeadlineExceeded));
                continue;
            }
            let x = layer_step(net, layer, x, i, last, cfg, 0, probe);
            sink.layer_output(m, i, &x);
            if x.has_non_finite() {
                logits[m] = Some(unbounded_logits(net, &x));
            } else {
                states[m] = Some(x);
            }
        }
    }
    for (m, q) in queries.iter().enumerate() {
        let Some(x) = states[m].take() else { continue };
        if q.deadline.check().is_err() {
            results[m] = Some(Err(DeadlineExceeded));
            continue;
        }
        logits[m] = Some(pool_logits(net, &x, probe));
    }
    probe.span_exit(SpanKind::Propagate, None, 0);
    for (m, q) in queries.iter().enumerate() {
        let Some(z) = logits[m].take() else { continue };
        results[m] = Some(
            margins_from_zonotope_deadline(&z, q.true_label, q.deadline)
                .map(CertResult::from_margins),
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("every batch member resolves to a result"))
        .collect()
}

/// One encoder layer in the abstract domain.
fn encoder_layer(
    x: &Zonotope,
    layer: &EncoderLayer,
    ln: LayerNormKind,
    head_dim: usize,
    dot: DotConfig,
    softmax: SoftmaxConfig,
    probe: &dyn Probe,
) -> Zonotope {
    // Multi-head self-attention (Eq. 1).
    probe.span_enter(SpanKind::Attention);
    let par = probe.enabled().then(parallel::snapshot);
    let scale = 1.0 / (head_dim as f64).sqrt();
    let mut heads = Vec::with_capacity(layer.attention.heads.len());
    for h in &layer.attention.heads {
        let q = x.matmul_right(&h.wq).scale(scale);
        let k = x.matmul_right(&h.wk);
        let v = x.matmul_right(&h.wv);
        let scores = zono_matmul_probed(&q, &k.transpose(), dot, probe);
        let attn = softmax_rows_probed(&scores, softmax, probe);
        heads.push(zono_matmul_probed(&attn, &v, dot, probe));
    }
    let merged = Zonotope::concat_cols(&heads);
    let z = merged
        .matmul_right(&layer.attention.w0)
        .add_row_bias(layer.attention.b0.row(0));
    let attn_created = z.num_eps().saturating_sub(x.num_eps());
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    let stats = probe.enabled().then(|| z.telemetry_stats());
    probe.span_exit(SpanKind::Attention, stats, attn_created);

    // Residual + normalization.
    probe.span_enter(SpanKind::LayerNorm);
    let par = probe.enabled().then(parallel::snapshot);
    let x = layer_norm_abstract(&x.add(&z), &layer.ln1, ln, dot);
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    let stats = probe.enabled().then(|| x.telemetry_stats());
    probe.span_exit(
        SpanKind::LayerNorm,
        stats,
        x.num_eps().saturating_sub(z.num_eps()),
    );

    // Feed-forward network.
    probe.span_enter(SpanKind::Ffn);
    let par = probe.enabled().then(parallel::snapshot);
    let h = x
        .matmul_right(&layer.ffn.w1)
        .add_row_bias(layer.ffn.b1.row(0))
        .relu();
    let y = h
        .matmul_right(&layer.ffn.w2)
        .add_row_bias(layer.ffn.b2.row(0));
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    let stats = probe.enabled().then(|| y.telemetry_stats());
    probe.span_exit(
        SpanKind::Ffn,
        stats,
        y.num_eps().saturating_sub(x.num_eps()),
    );

    probe.span_enter(SpanKind::LayerNorm);
    let par = probe.enabled().then(parallel::snapshot);
    let out = layer_norm_abstract(&x.add(&y), &layer.ln2, ln, dot);
    if let Some(before) = par {
        probe.parallel(parallel_stats_since(&before));
    }
    let stats = probe.enabled().then(|| out.telemetry_stats());
    probe.span_exit(
        SpanKind::LayerNorm,
        stats,
        out.num_eps().saturating_sub(y.num_eps()),
    );
    out
}

/// Abstract layer normalization.
///
/// The no-std flavour is purely affine (exact). The standard flavour
/// composes mean subtraction, element-wise squaring (multiplication
/// transformer), the √ and reciprocal transformers, and a final
/// multiplication by the broadcast inverse standard deviation.
fn layer_norm_abstract(
    x: &Zonotope,
    ln: &LayerNorm,
    kind: LayerNormKind,
    dot: DotConfig,
) -> Zonotope {
    let centred = x.subtract_row_mean();
    let normed = match kind {
        LayerNormKind::NoStd => centred,
        LayerNormKind::Std { epsilon } => {
            let e = x.cols();
            // var = mean(centred²) per row.
            let sq = deept_core::dot::mul_elementwise(&centred, &centred, dot);
            let mean_w = Matrix::full(e, 1, 1.0 / e as f64);
            let var = sq.matmul_right(&mean_w); // (N × 1)
            let var = var.add_const(&Matrix::full(var.rows(), 1, epsilon));
            // 1/√(var): the abstract square can dip below zero while the
            // true variance is ≥ 0, so the composed sqrt→reciprocal
            // expression would inherit spuriously negative inputs. We
            // therefore concretize here: interval bounds of var (floored at
            // ε on domain grounds), mapped through the monotone 1/√·, give
            // a per-row interval represented with one fresh ε symbol.
            let (lv, uv) = var.bounds();
            let n_rows = var.rows();
            let mut center = Matrix::zeros(n_rows, 1);
            let mut radii = Matrix::zeros(n_rows, 1);
            for r in 0..n_rows {
                let l = lv[r].max(epsilon);
                let u = uv[r].max(epsilon);
                // Outward-rounded interval. Each endpoint of 1/√· carries up
                // to ~1.5 ulp of rounding (√ then divide) and the midpoint
                // and radius arithmetic round again; the old radius
                // 0.5·(hi − lo) rounded *inward*, so a concrete 1/√var at an
                // interval endpoint could land strictly outside the
                // represented box. Widen the endpoints by two ulps and take
                // the directed maximum distance from the centre, nudged up.
                let hi = (1.0 / l.sqrt()).next_up().next_up();
                let lo = (1.0 / u.sqrt()).next_down().next_down();
                let mid = 0.5 * (hi + lo);
                center.set(r, 0, mid);
                radii.set(r, 0, (hi - mid).max(mid - lo).next_up());
            }
            let boxed = Zonotope::from_box(&center, &radii, x.p());
            // Align symbol spaces: the boxed interval shares no φ/ε with x,
            // so lift it into x's symbol layout with its fresh symbols at
            // the tail. The lift is structural — the diagonal fresh-symbol
            // block just moves to a higher column offset.
            let phi_pad = Matrix::zeros(n_rows, centred.num_phi());
            let eps_lift = boxed.eps_store().lifted(centred.num_eps());
            let inv_std = Zonotope::from_parts_store(
                n_rows,
                1,
                boxed.center().to_vec(),
                phi_pad,
                eps_lift,
                x.p(),
            );
            // Broadcast to (N × E) and multiply element-wise.
            let ones = Matrix::full(1, e, 1.0);
            let inv_b = inv_std.matmul_right(&ones);
            let mut centred_padded = centred.clone();
            centred_padded.pad_eps(inv_b.num_eps());
            deept_core::dot::mul_elementwise(&centred_padded, &inv_b, dot)
        }
    };
    normed
        .mul_row_weights(ln.gamma.row(0))
        .add_row_bias(ln.beta.row(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_core::PNorm;
    use deept_nn::transformer::{TransformerClassifier, TransformerConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model(ln: LayerNormKind, layers: usize) -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 13,
                max_len: 6,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 12,
                num_layers: layers,
                num_classes: 2,
                layer_norm: ln,
            },
            &mut rng,
        )
    }

    fn check_propagation_sound(ln: LayerNormKind, p: PNorm, cfg: &DeepTConfig, seed: u64) {
        let model = tiny_model(ln, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        let region = crate::network::t1_region(&emb, 1, 0.05, p);
        let logits = propagate(&net, &region, cfg);
        let (lo, hi) = logits.bounds();
        // Sample concrete embeddings from the region, run the concrete
        // network, check containment.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..60 {
            let (phi, eps) = region.sample_noise(&mut rng);
            let x = region.evaluate(&phi, &eps);
            let xm = Matrix::from_vec(emb.rows(), emb.cols(), x)
                .expect("Zonotope::evaluate yields rows*cols values for a rows x cols zonotope");
            let out = model.classify(&model.encode(&xm));
            for c in 0..2 {
                assert!(
                    out.at(0, c) >= lo[c] - 1e-7 && out.at(0, c) <= hi[c] + 1e-7,
                    "{ln:?}/{p:?}: logit {c} = {} outside [{}, {}]",
                    out.at(0, c),
                    lo[c],
                    hi[c]
                );
            }
        }
    }

    #[test]
    fn propagation_sound_no_std_all_norms() {
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            check_propagation_sound(LayerNormKind::NoStd, p, &DeepTConfig::fast(4000), 1);
        }
    }

    #[test]
    fn propagation_sound_std_layer_norm() {
        check_propagation_sound(
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::L2,
            &DeepTConfig::fast(4000),
            2,
        );
    }

    #[test]
    fn propagation_sound_precise_and_combined() {
        check_propagation_sound(
            LayerNormKind::NoStd,
            PNorm::Linf,
            &DeepTConfig::precise(500),
            3,
        );
        check_propagation_sound(
            LayerNormKind::NoStd,
            PNorm::Linf,
            &DeepTConfig::combined(500),
            4,
        );
    }

    #[test]
    fn propagation_sound_with_reduction_pressure() {
        // A harsh budget forces reductions at every layer.
        check_propagation_sound(LayerNormKind::NoStd, PNorm::L2, &DeepTConfig::fast(16), 5);
    }

    #[test]
    fn zero_radius_certifies_correct_class() {
        let model = tiny_model(LayerNormKind::NoStd, 1);
        let net = VerifiableTransformer::from(&model);
        let tokens = [3usize, 4, 5];
        let emb = model.embed(&tokens);
        let pred = model.predict(&tokens);
        let region = crate::network::t1_region(&emb, 0, 0.0, PNorm::L2);
        let res = certify(&net, &region, pred, &DeepTConfig::fast(4000));
        assert!(res.certified, "zero radius must certify: {:?}", res.margins);
        // And certifying the wrong label must fail.
        let res_wrong = certify(&net, &region, 1 - pred, &DeepTConfig::fast(4000));
        assert!(!res_wrong.certified);
    }

    #[test]
    fn certification_is_monotone_in_radius() {
        let model = tiny_model(LayerNormKind::NoStd, 1);
        let net = VerifiableTransformer::from(&model);
        let tokens = [3usize, 4, 5];
        let emb = model.embed(&tokens);
        let pred = model.predict(&tokens);
        let cfg = DeepTConfig::fast(4000);
        let margin = |r: f64| {
            let region = crate::network::t1_region(&emb, 1, r, PNorm::L2);
            certify(&net, &region, pred, &cfg).margins[1 - pred]
        };
        let m0 = margin(0.001);
        let m1 = margin(0.01);
        let m2 = margin(0.1);
        assert!(m0 >= m1 && m1 >= m2, "margins not monotone: {m0} {m1} {m2}");
    }

    #[test]
    fn expired_deadline_aborts_certification() {
        let model = tiny_model(LayerNormKind::NoStd, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 2, 3];
        let emb = model.embed(&tokens);
        let region = crate::network::t1_region(&emb, 0, 0.01, PNorm::L2);
        let res = certify_deadline(
            &net,
            &region,
            0,
            &DeepTConfig::fast(4000),
            Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        );
        assert_eq!(res, Err(DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_matches_unlimited_certification_bitwise() {
        let model = tiny_model(LayerNormKind::NoStd, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9];
        let emb = model.embed(&tokens);
        let cfg = DeepTConfig::fast(4000);
        let region = crate::network::t1_region(&emb, 1, 0.02, PNorm::Linf);
        let pred = model.predict(&tokens);
        let plain = certify(&net, &region, pred, &cfg);
        let limited = certify_deadline(
            &net,
            &region,
            pred,
            &cfg,
            Deadline::after(std::time::Duration::from_secs(3600)),
        )
        .expect("generous deadline must not expire");
        assert_eq!(plain, limited);
    }

    #[test]
    fn suffix_entry_with_zero_offsets_matches_propagate_bitwise() {
        let model = tiny_model(LayerNormKind::NoStd, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        let cfg = DeepTConfig::fast(60);
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            let region = crate::network::t1_region(&emb, 1, 0.03, p);
            let plain = propagate(&net, &region, &cfg);
            let suffix = propagate_suffix_deadline_probed(
                &net,
                &region,
                &cfg,
                0,
                0,
                Deadline::none(),
                &NoopProbe,
            )
            .expect("Deadline::none() never expires");
            let (pl, pu) = plain.bounds();
            let (sl, su) = suffix.bounds();
            assert_eq!(pl, sl, "{p:?}: lower bounds diverged");
            assert_eq!(pu, su, "{p:?}: upper bounds diverged");
        }
    }

    /// Collects every layer-boundary state, as the serve state cache does.
    struct CollectStates {
        states: Vec<Zonotope>,
    }

    impl SoundnessProbe for CollectStates {
        fn layer_output(&mut self, i: usize, z: &Zonotope) {
            assert_eq!(i, self.states.len(), "layer outputs arrive in order");
            self.states.push(z.clone());
        }
    }

    #[test]
    fn resume_from_every_layer_matches_cold_bitwise() {
        // The state-cache contract: resuming from the snapshot taken after
        // layer k, with start_layer = k + 1, reproduces the cold logits
        // bit for bit — for every layer, config and norm.
        let model = tiny_model(LayerNormKind::NoStd, 3);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        for cfg in [
            DeepTConfig::fast(60),
            DeepTConfig::precise(500),
            DeepTConfig::combined(500),
        ] {
            for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
                let region = crate::network::t1_region(&emb, 1, 0.03, p);
                let mut snap = CollectStates { states: Vec::new() };
                let cold = propagate_with_snapshots(&net, &region, &cfg, &mut snap);
                assert_eq!(snap.states.len(), net.layers.len());
                let (cl, cu) = cold.bounds();
                for (k, state) in snap.states.iter().enumerate() {
                    let warm = propagate_suffix_deadline_probed(
                        &net,
                        state,
                        &cfg,
                        k + 1,
                        0,
                        Deadline::none(),
                        &NoopProbe,
                    )
                    .expect("Deadline::none() never expires");
                    let (wl, wu) = warm.bounds();
                    assert_eq!(cl, wl, "{p:?} layer {k}: lower bounds diverged");
                    assert_eq!(cu, wu, "{p:?} layer {k}: upper bounds diverged");
                }
            }
        }
    }

    /// Records per-member snapshots from a batched sweep.
    struct CollectBatchStates {
        states: Vec<Vec<(usize, Zonotope)>>,
    }

    impl BatchSnapshotSink for CollectBatchStates {
        fn layer_output(&mut self, member: usize, layer: usize, z: &Zonotope) {
            self.states[member].push((layer, z.clone()));
        }
    }

    #[test]
    fn resumable_batch_mid_stack_matches_serial_bitwise() {
        // A fused synonym sweep resumes every member from a shared cached
        // state; each member's margins must equal the cold serial result
        // exactly, whatever layer it joins at.
        let model = tiny_model(LayerNormKind::NoStd, 3);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        let pred = model.predict(&tokens);
        let cfg = DeepTConfig::fast(60);
        for p in [PNorm::L2, PNorm::Linf] {
            let regions: Vec<_> = [0.001, 0.01, 0.05]
                .iter()
                .map(|&eps| crate::network::t1_region(&emb, 1, eps, p))
                .collect();
            // Cold pass, capturing per-member layer states through the sink.
            let queries: Vec<BatchQuery<'_>> = regions
                .iter()
                .map(|r| BatchQuery {
                    input: r,
                    true_label: pred,
                    deadline: Deadline::none(),
                })
                .collect();
            let mut sink = CollectBatchStates {
                states: vec![Vec::new(); regions.len()],
            };
            let cold = certify_batch_resumable(&net, &queries, None, &cfg, &NoopProbe, &mut sink);
            // Resume each member from a different depth (0 = cold re-run,
            // 1..=layers = snapshot states), in one batch.
            let n_layers = net.layers.len();
            let starts: Vec<usize> = (0..regions.len())
                .map(|m| (m + 1) % (n_layers + 1))
                .collect();
            let inputs: Vec<Zonotope> = starts
                .iter()
                .enumerate()
                .map(|(m, &s)| {
                    if s == 0 {
                        regions[m].clone()
                    } else {
                        let (layer, z) = &sink.states[m][s - 1];
                        assert_eq!(*layer, s - 1);
                        z.clone()
                    }
                })
                .collect();
            let warm_queries: Vec<BatchQuery<'_>> = inputs
                .iter()
                .map(|r| BatchQuery {
                    input: r,
                    true_label: pred,
                    deadline: Deadline::none(),
                })
                .collect();
            let warm = certify_batch_resumable(
                &net,
                &warm_queries,
                Some(&starts),
                &cfg,
                &NoopProbe,
                &mut NoBatchSnapshots,
            );
            for (m, (c, w)) in cold.iter().zip(&warm).enumerate() {
                assert_eq!(
                    c.as_ref().expect("no deadline"),
                    w.as_ref().expect("no deadline"),
                    "{p:?} member {m} (start {}): warm diverged from cold",
                    starts[m]
                );
            }
            // The serial snapshot collector and the batched sink see the
            // same states for the same query.
            let mut serial = CollectStates { states: Vec::new() };
            let _ = propagate_with_snapshots(&net, &regions[0], &cfg, &mut serial);
            assert_eq!(serial.states.len(), sink.states[0].len());
            for (k, (layer, z)) in sink.states[0].iter().enumerate() {
                assert_eq!(*layer, k);
                assert_eq!(&serial.states[k], z, "{p:?}: sink state {k} diverged");
            }
        }
    }

    #[test]
    fn protected_prefix_still_sound_and_keeps_region_symbols() {
        // Propagating with the input region's ε columns protected must keep
        // those columns addressable at the logits and stay sound (protection
        // only changes *which* symbols a reduction folds away).
        let model = tiny_model(LayerNormKind::NoStd, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        let region = crate::network::t1_region(&emb, 1, 0.05, PNorm::Linf);
        let protect = region.num_eps();
        assert!(protect > 0, "Linf region must carry input ε symbols");
        let cfg = DeepTConfig::fast(16);
        let logits = propagate_suffix_deadline_probed(
            &net,
            &region,
            &cfg,
            0,
            protect,
            Deadline::none(),
            &NoopProbe,
        )
        .expect("Deadline::none() never expires");
        assert!(
            logits.num_eps() >= protect,
            "protected region symbols must survive to the logits"
        );
        let (lo, hi) = logits.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..40 {
            let (phi, eps) = region.sample_noise(&mut rng);
            let x = region.evaluate(&phi, &eps);
            let xm = Matrix::from_vec(emb.rows(), emb.cols(), x).expect("shape");
            let out = model.classify(&model.encode(&xm));
            for c in 0..2 {
                assert!(
                    out.at(0, c) >= lo[c] - 1e-7 && out.at(0, c) <= hi[c] + 1e-7,
                    "logit {c} = {} outside [{}, {}]",
                    out.at(0, c),
                    lo[c],
                    hi[c]
                );
            }
        }
    }

    #[test]
    fn batched_lockstep_matches_serial_bitwise() {
        // The fused serve path leans on this: a batch member's result must
        // equal the serially-certified result exactly, for every config and
        // norm, with per-member deadlines honoured independently.
        let model = tiny_model(LayerNormKind::NoStd, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        let pred = model.predict(&tokens);
        for cfg in [
            DeepTConfig::fast(60),
            DeepTConfig::precise(500),
            DeepTConfig::combined(500),
        ] {
            for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
                let regions: Vec<_> = [0.001, 0.01, 0.05]
                    .iter()
                    .map(|&eps| crate::network::t1_region(&emb, 1, eps, p))
                    .collect();
                let queries: Vec<BatchQuery<'_>> = regions
                    .iter()
                    .map(|r| BatchQuery {
                        input: r,
                        true_label: pred,
                        deadline: Deadline::none(),
                    })
                    .collect();
                let batched = certify_batch_deadline_probed(&net, &queries, &cfg, &NoopProbe);
                for (region, got) in regions.iter().zip(&batched) {
                    let serial = certify(&net, region, pred, &cfg);
                    assert_eq!(
                        got.as_ref().expect("no deadline in play"),
                        &serial,
                        "{p:?}: fused result diverged from serial"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_member_deadlines_are_independent() {
        let model = tiny_model(LayerNormKind::NoStd, 2);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 2, 3];
        let emb = model.embed(&tokens);
        let pred = model.predict(&tokens);
        let cfg = DeepTConfig::fast(4000);
        let live = crate::network::t1_region(&emb, 0, 0.01, PNorm::L2);
        let dead = crate::network::t1_region(&emb, 0, 0.02, PNorm::L2);
        let expired = Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let queries = [
            BatchQuery {
                input: &dead,
                true_label: pred,
                deadline: expired,
            },
            BatchQuery {
                input: &live,
                true_label: pred,
                deadline: Deadline::none(),
            },
        ];
        let out = certify_batch_deadline_probed(&net, &queries, &cfg, &NoopProbe);
        assert_eq!(out[0], Err(DeadlineExceeded));
        let serial = certify(&net, &live, pred, &cfg);
        assert_eq!(
            out[1].as_ref().expect("unlimited member must finish"),
            &serial,
            "an expired sibling must not perturb a live member"
        );
    }

    #[test]
    fn precise_never_worse_than_fast_on_linf() {
        let model = tiny_model(LayerNormKind::NoStd, 1);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 2, 3];
        let emb = model.embed(&tokens);
        let pred = model.predict(&tokens);
        let region = crate::network::t1_region(&emb, 1, 0.02, PNorm::Linf);
        let fast = certify(&net, &region, pred, &DeepTConfig::fast(100_000));
        let precise = certify(&net, &region, pred, &DeepTConfig::precise(100_000));
        assert!(
            precise.margins[1 - pred] >= fast.margins[1 - pred] - 1e-9,
            "precise {} < fast {}",
            precise.margins[1 - pred],
            fast.margins[1 - pred]
        );
    }
}
