//! Robustness verifiers for Transformer classifiers.
//!
//! This crate assembles the DeepT verifier of the paper and the baselines it
//! is evaluated against:
//!
//! * [`deept`] — Multi-norm Zonotope propagation (DeepT-Fast, DeepT-Precise
//!   and the Combined variant of Appendix A.6);
//! * [`crown`] — linear-relaxation baselines in the roles of CROWN-Backward
//!   and CROWN-BaF, plus interval propagation;
//! * [`synonym`] — threat model T2 certification and the enumeration
//!   baseline (§6.7);
//! * [`radius`] — binary search for the maximum certified radius;
//! * [`deadline`] — cooperative cancellation budgets threaded through the
//!   radius-search and certification loops;
//! * [`attack`] — randomized falsification, used to sanity-check soundness
//!   and measure tightness;
//! * [`network`] — the verifier-facing network view and input regions.
//!
//! # Example
//!
//! ```
//! use deept_core::PNorm;
//! use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
//! use deept_verifier::deept::{certify, DeepTConfig};
//! use deept_verifier::network::{t1_region, VerifiableTransformer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let model = TransformerClassifier::new(
//!     TransformerConfig {
//!         vocab_size: 10, max_len: 4, embed_dim: 8, num_heads: 2,
//!         hidden_dim: 8, num_layers: 1, num_classes: 2,
//!         layer_norm: LayerNormKind::NoStd,
//!     },
//!     &mut rng,
//! );
//! let tokens = [1, 2, 3];
//! let pred = model.predict(&tokens);
//! let region = t1_region(&model.embed(&tokens), 0, 1e-4, PNorm::L2);
//! let result = certify(
//!     &VerifiableTransformer::from(&model),
//!     &region,
//!     pred,
//!     &DeepTConfig::fast(4000),
//! );
//! assert!(result.certified);
//! ```

//!
//! Every verifier entry point also has a `*_probed` variant taking a
//! [`deept_telemetry::Probe`], which reports per-layer spans, precision
//! metrics and radius-search steps without perturbing the computation.

#![deny(clippy::print_stdout)]

pub mod attack;
pub mod crown;
pub mod deadline;
pub mod deept;
pub mod network;
pub mod radius;
pub mod statehash;
pub mod synonym;

pub use deadline::{Deadline, DeadlineExceeded};
pub use deept::{DeepTConfig, NoSnapshots, SoundnessProbe};
pub use network::{CertResult, VerifiableTransformer};
pub use radius::{
    max_certified_radius, max_certified_radius_deadline, max_certified_radius_probed, RadiusOutcome,
};
