//! Threat model T2: certification against synonym substitution attacks
//! (§6.7), plus the enumeration baseline it is compared with.
//!
//! Every word of the sentence may independently be replaced by any of its
//! synonyms; the attack surface is the Cartesian product of all synonym
//! sets. DeepT covers it with a per-position ℓ∞ box over the candidate
//! embeddings and certifies the box in one shot; enumeration classifies
//! every combination (and quickly becomes infeasible — the paper reports 2–3
//! orders of magnitude slowdown on long sentences).

use deept_data::SynonymSets;
use deept_nn::TransformerClassifier;

use crate::crown::{self, CrownConfig, CrownInput};
use crate::deept::{self, DeepTConfig};
use crate::network::{t2_region, CertResult, VerifiableTransformer};

/// Per-position alternative embedding rows (token embedding + positional
/// encoding) admissible under the synonym sets.
pub fn alternatives(
    model: &TransformerClassifier,
    tokens: &[usize],
    synonyms: &SynonymSets,
) -> Vec<Vec<Vec<f64>>> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            synonyms
                .of(t)
                .iter()
                .map(|&s| deept_tensor::vec_add(model.token_embed.row(s), model.pos_embed.row(i)))
                .collect()
        })
        .collect()
}

/// Certifies a sentence against T2 with DeepT.
pub fn certify_deept(
    model: &TransformerClassifier,
    tokens: &[usize],
    synonyms: &SynonymSets,
    true_label: usize,
    cfg: &DeepTConfig,
) -> CertResult {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let region = t2_region(&emb, &alternatives(model, tokens, synonyms));
    deept::certify(&net, &region, true_label, cfg)
}

/// Certifies a sentence against T2 with the CROWN-style baseline.
pub fn certify_crown(
    model: &TransformerClassifier,
    tokens: &[usize],
    synonyms: &SynonymSets,
    true_label: usize,
    cfg: &CrownConfig,
) -> CertResult {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let alts = alternatives(model, tokens, synonyms);
    // Build the same per-dimension box as `t2_region`, in CROWN input form.
    let e = emb.cols();
    let mut center = emb.clone();
    let mut radii = Vec::new();
    for (i, alt) in alts.iter().enumerate() {
        if alt.is_empty() {
            continue;
        }
        let mut lo = emb.row(i).to_vec();
        let mut hi = emb.row(i).to_vec();
        for a in alt {
            for (d, &v) in a.iter().enumerate() {
                lo[d] = lo[d].min(v);
                hi[d] = hi[d].max(v);
            }
        }
        for d in 0..e {
            center.set(i, d, 0.5 * (lo[d] + hi[d]));
            let r = 0.5 * (hi[d] - lo[d]);
            if r > 0.0 {
                radii.push((i * e + d, r));
            }
        }
    }
    let input = CrownInput::boxed(&center, &radii);
    crown::certify(&net, &input, true_label, cfg)
}

/// Result of the enumeration baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumOutcome {
    /// Whether all enumerated combinations kept the true label.
    pub robust: bool,
    /// Number of combinations actually classified.
    pub checked: u64,
    /// Whether the whole product space was covered (false if `limit` hit).
    pub exhausted: bool,
}

/// Classifies synonym combinations one by one, stopping at the first label
/// flip or after `limit` combinations.
pub fn enumerate(
    model: &TransformerClassifier,
    tokens: &[usize],
    synonyms: &SynonymSets,
    true_label: usize,
    limit: u64,
) -> EnumOutcome {
    // Candidate lists per position: original token first.
    let candidates: Vec<Vec<usize>> = tokens
        .iter()
        .map(|&t| {
            std::iter::once(t)
                .chain(synonyms.of(t).iter().copied())
                .collect()
        })
        .collect();
    let mut counters = vec![0usize; tokens.len()];
    let mut current: Vec<usize> = tokens.to_vec();
    let mut checked = 0u64;
    loop {
        if checked >= limit {
            return EnumOutcome {
                robust: true,
                checked,
                exhausted: false,
            };
        }
        if model.predict(&current) != true_label {
            return EnumOutcome {
                robust: false,
                checked: checked + 1,
                exhausted: false,
            };
        }
        checked += 1;
        // Odometer increment over the candidate lists.
        let mut pos = 0;
        loop {
            if pos == tokens.len() {
                return EnumOutcome {
                    robust: true,
                    checked,
                    exhausted: true,
                };
            }
            counters[pos] += 1;
            if counters[pos] < candidates[pos].len() {
                current[pos] = candidates[pos][counters[pos]];
                break;
            }
            counters[pos] = 0;
            current[pos] = candidates[pos][0];
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_nn::transformer::{LayerNormKind, TransformerConfig};
    use deept_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 10,
                max_len: 5,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 8,
                num_layers: 1,
                num_classes: 2,
                layer_norm: LayerNormKind::NoStd,
            },
            &mut rng,
        )
    }

    fn close_synonyms(model: &TransformerClassifier) -> SynonymSets {
        // Tight synonym neighbourhoods in the (random) embedding space.
        SynonymSets::from_embeddings(&model.token_embed, 2, 0.35)
    }

    #[test]
    fn enumeration_counts_combinations() {
        let m = model();
        // Hand-built synonym sets: token 0 ↔ 1, token 2 ↔ {3, 4}.
        let emb = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.01, 0.0],
            &[5.0, 5.0],
            &[5.01, 5.0],
            &[5.0, 5.01],
            &[9.0, 9.0],
        ]);
        let syn = SynonymSets::from_embeddings(&emb, 2, 0.05);
        let tokens = [0usize, 2, 5];
        assert_eq!(syn.combinations(&tokens), 2 * 3);
        let label = m.predict(&tokens);
        let out = enumerate(&m, &tokens, &syn, label, 1_000);
        assert!(out.checked <= 6);
        if out.robust {
            assert!(out.exhausted);
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let m = model();
        let syn = close_synonyms(&m);
        let tokens = [0usize, 1, 2, 3];
        let label = m.predict(&tokens);
        let out = enumerate(&m, &tokens, &syn, label, 3);
        assert!(out.checked <= 3);
    }

    #[test]
    fn certification_implies_enumeration_robustness() {
        // The central T2 soundness property: if DeepT certifies the synonym
        // box, exhaustive enumeration must find no adversarial combination.
        let m = model();
        let syn = close_synonyms(&m);
        let mut agreements = 0;
        for tokens in [[0usize, 3, 7], [1, 4, 8], [2, 5, 6], [5, 0, 9]] {
            let label = m.predict(&tokens);
            let cert = certify_deept(&m, &tokens, &syn, label, &DeepTConfig::fast(4000));
            let enu = enumerate(&m, &tokens, &syn, label, 100_000);
            assert!(enu.exhausted);
            if cert.certified {
                assert!(enu.robust, "certified but enumeration found an attack");
                agreements += 1;
            }
        }
        // Not a soundness requirement, but the test is vacuous if nothing
        // certifies; with tight synonym balls most sentences should.
        let _ = agreements;
    }

    #[test]
    fn crown_t2_certification_is_sound_too() {
        let m = model();
        let syn = close_synonyms(&m);
        let tokens = [0usize, 3, 7];
        let label = m.predict(&tokens);
        let cert = certify_crown(&m, &tokens, &syn, label, &CrownConfig::backward());
        if cert.certified {
            let enu = enumerate(&m, &tokens, &syn, label, 100_000);
            assert!(enu.robust && enu.exhausted);
        }
    }
}
