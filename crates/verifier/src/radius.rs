//! Maximum certified radius via binary search (§6.1), with optional
//! cooperative cancellation between queries.

use deept_telemetry::{NoopProbe, Probe, RadiusStep, SpanKind};

use crate::deadline::{Deadline, DeadlineExceeded};

/// Cached handle into the process-global (gated) metrics registry: total
/// verifier queries issued by radius searches (observability only; never
/// influences the search).
fn radius_queries_total() -> &'static deept_metrics::Counter {
    static C: std::sync::OnceLock<deept_metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        deept_metrics::global().counter(
            "deept_radius_queries_total",
            "Certification queries issued by radius binary searches.",
        )
    })
}

/// Result of a deadline-aware radius search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RadiusOutcome {
    /// The search ran to completion; the payload is the certified radius.
    Completed(f64),
    /// The deadline expired mid-search. `lower_bound` is the largest radius
    /// certified before the cut-off (a sound partial answer; `0.0` when no
    /// query finished), `queries` the number of completed verifier calls.
    TimedOut {
        /// Largest radius certified before the cut-off.
        lower_bound: f64,
        /// Verifier queries completed before the cut-off.
        queries: usize,
    },
}

impl RadiusOutcome {
    /// The best certified lower bound, whether or not the search finished.
    pub fn lower_bound(&self) -> f64 {
        match *self {
            RadiusOutcome::Completed(r) => r,
            RadiusOutcome::TimedOut { lower_bound, .. } => lower_bound,
        }
    }

    /// Whether the search ran out of budget.
    pub fn timed_out(&self) -> bool {
        matches!(self, RadiusOutcome::TimedOut { .. })
    }
}

/// Finds (a lower bound on) the largest radius `r` for which `verify(r)`
/// holds, assuming `verify` is monotone (certifiable at `r` implies
/// certifiable below `r` — true for all verifiers in this crate).
///
/// The search first grows an upper bracket exponentially from `start`, then
/// bisects for `iters` rounds. Returns `0.0` if even an infinitesimal radius
/// fails (e.g. the point is misclassified).
pub fn max_certified_radius(verify: impl FnMut(f64) -> bool, start: f64, iters: usize) -> f64 {
    max_certified_radius_probed(verify, start, iters, &NoopProbe)
}

/// [`max_certified_radius`] with telemetry: the whole search runs inside a
/// `radius_search` span, each certification query inside a `radius_iter`
/// span, and every query additionally reports a [`RadiusStep`] with the
/// radius tried and the outcome. The query sequence is unchanged.
pub fn max_certified_radius_probed(
    mut verify: impl FnMut(f64) -> bool,
    start: f64,
    iters: usize,
    probe: &dyn Probe,
) -> f64 {
    let outcome =
        max_certified_radius_deadline(|r| Ok(verify(r)), start, iters, Deadline::none(), probe);
    match outcome {
        RadiusOutcome::Completed(r) => r,
        // Unreachable: the closure never errors and Deadline::none() never
        // expires.
        RadiusOutcome::TimedOut { lower_bound, .. } => lower_bound,
    }
}

/// [`max_certified_radius_probed`] with a cooperative [`Deadline`].
///
/// The deadline is polled between search iterations, and the `verify`
/// closure may itself unwind with [`DeadlineExceeded`] (e.g. from
/// [`certify_deadline`](crate::deept::certify_deadline) checking between
/// encoder layers or per-class margin queries). Either way the search stops
/// at a query boundary and reports the best certified radius found so far —
/// a sound lower bound — instead of hanging past the budget.
///
/// With `Deadline::none()` and an infallible closure the query sequence,
/// probe spans and result are bitwise identical to
/// [`max_certified_radius_probed`].
pub fn max_certified_radius_deadline(
    mut verify: impl FnMut(f64) -> Result<bool, DeadlineExceeded>,
    start: f64,
    iters: usize,
    deadline: Deadline,
    probe: &dyn Probe,
) -> RadiusOutcome {
    assert!(start > 0.0, "start radius must be positive");
    probe.span_enter(SpanKind::RadiusSearch);
    let mut queries = 0;
    let mut iteration = 0;
    // `record = false` for the radius-0 misclassification sanity check: it
    // is a plain classification query, not a step of the §6.1 binary
    // search, so it gets neither a radius_iter span nor a RadiusStep (all
    // recorded steps therefore have a strictly positive radius).
    let mut check = |radius: f64, record: bool| -> Result<bool, DeadlineExceeded> {
        deadline.check()?;
        let certified = if record {
            probe.span_enter(SpanKind::RadiusIter(iteration));
            let result = verify(radius);
            probe.span_exit(SpanKind::RadiusIter(iteration), None, 0);
            let certified = result?;
            probe.radius_step(RadiusStep {
                iteration,
                radius,
                certified,
            });
            iteration += 1;
            certified
        } else {
            verify(radius)?
        };
        queries += 1;
        Ok(certified)
    };
    // Largest radius certified so far, kept outside the search body so a
    // timeout can still report it.
    let mut best = 0.0;
    let result = (|| -> Result<f64, DeadlineExceeded> {
        if !check(0.0, false)? {
            return Ok(0.0);
        }
        let mut lo = 0.0;
        let mut hi = start;
        let mut grow = 0;
        while check(hi, true)? && grow < 40 {
            lo = hi;
            best = lo;
            hi *= 2.0;
            grow += 1;
        }
        if grow == 40 {
            return Ok(lo); // effectively unbounded; report the bracket
        }
        for _ in 0..iters {
            let mid = 0.5 * (lo + hi);
            if check(mid, true)? {
                lo = mid;
                best = lo;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    })();
    probe.span_exit(SpanKind::RadiusSearch, None, 0);
    radius_queries_total().add(queries as u64);
    match result {
        Ok(r) => RadiusOutcome::Completed(r),
        Err(DeadlineExceeded) => RadiusOutcome::TimedOut {
            lower_bound: best,
            queries,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn finds_threshold() {
        // verify(r) = r <= 0.37
        let r = max_certified_radius(|r| r <= 0.37, 0.01, 40);
        assert!((r - 0.37).abs() < 1e-6);
    }

    #[test]
    fn misclassified_point_gives_zero() {
        assert_eq!(max_certified_radius(|_| false, 0.1, 20), 0.0);
    }

    #[test]
    fn threshold_below_start_is_found() {
        let r = max_certified_radius(|r| r <= 0.003, 0.1, 40);
        assert!((r - 0.003).abs() < 1e-6);
    }

    #[test]
    fn counts_calls_reasonably() {
        let mut calls = 0;
        let _ = max_certified_radius(
            |r| {
                calls += 1;
                r <= 0.25
            },
            0.01,
            20,
        );
        assert!(calls < 70, "too many verifier calls: {calls}");
    }

    #[test]
    fn unlimited_deadline_matches_plain_search() {
        let plain = max_certified_radius(|r| r <= 0.37, 0.01, 40);
        let outcome = max_certified_radius_deadline(
            |r| Ok(r <= 0.37),
            0.01,
            40,
            Deadline::none(),
            &deept_telemetry::NoopProbe,
        );
        assert_eq!(outcome, RadiusOutcome::Completed(plain));
        assert!(!outcome.timed_out());
    }

    #[test]
    fn expired_deadline_times_out_before_any_query() {
        let mut calls = 0;
        let outcome = max_certified_radius_deadline(
            |_| {
                calls += 1;
                Ok(true)
            },
            0.01,
            40,
            Deadline::at(Instant::now() - Duration::from_millis(1)),
            &deept_telemetry::NoopProbe,
        );
        assert_eq!(calls, 0);
        assert_eq!(
            outcome,
            RadiusOutcome::TimedOut {
                lower_bound: 0.0,
                queries: 0
            }
        );
    }

    #[test]
    fn closure_timeout_reports_partial_lower_bound() {
        // The closure certifies radii up to 0.5 but gives out after a few
        // queries, mimicking certify_deadline unwinding mid-search.
        let mut calls = 0;
        let outcome = max_certified_radius_deadline(
            |r| {
                if calls >= 4 {
                    return Err(DeadlineExceeded);
                }
                calls += 1;
                Ok(r <= 0.5)
            },
            0.01,
            40,
            Deadline::none(),
            &deept_telemetry::NoopProbe,
        );
        match outcome {
            RadiusOutcome::TimedOut {
                lower_bound,
                queries,
            } => {
                assert_eq!(queries, 4);
                // Queries: 0.0, 0.01, 0.02, 0.04 — all certified, so the
                // best certified radius seen is 0.04.
                assert!((lower_bound - 0.04).abs() < 1e-12, "{lower_bound}");
                assert_eq!(outcome.lower_bound(), lower_bound);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn timed_out_lower_bound_is_sound() {
        // Whatever the interruption point, the reported bound never exceeds
        // the true threshold.
        for budget in 0..12 {
            let mut calls = 0;
            let outcome = max_certified_radius_deadline(
                |r| {
                    if calls >= budget {
                        return Err(DeadlineExceeded);
                    }
                    calls += 1;
                    Ok(r <= 0.37)
                },
                0.01,
                40,
                Deadline::none(),
                &deept_telemetry::NoopProbe,
            );
            assert!(outcome.lower_bound() <= 0.37 + 1e-12);
        }
    }
}
