//! Maximum certified radius via binary search (§6.1).

use deept_telemetry::{NoopProbe, Probe, RadiusStep, SpanKind};

/// Finds (a lower bound on) the largest radius `r` for which `verify(r)`
/// holds, assuming `verify` is monotone (certifiable at `r` implies
/// certifiable below `r` — true for all verifiers in this crate).
///
/// The search first grows an upper bracket exponentially from `start`, then
/// bisects for `iters` rounds. Returns `0.0` if even an infinitesimal radius
/// fails (e.g. the point is misclassified).
pub fn max_certified_radius(verify: impl FnMut(f64) -> bool, start: f64, iters: usize) -> f64 {
    max_certified_radius_probed(verify, start, iters, &NoopProbe)
}

/// [`max_certified_radius`] with telemetry: the whole search runs inside a
/// `radius_search` span, each certification query inside a `radius_iter`
/// span, and every query additionally reports a [`RadiusStep`] with the
/// radius tried and the outcome. The query sequence is unchanged.
pub fn max_certified_radius_probed(
    mut verify: impl FnMut(f64) -> bool,
    start: f64,
    iters: usize,
    probe: &dyn Probe,
) -> f64 {
    assert!(start > 0.0, "start radius must be positive");
    probe.span_enter(SpanKind::RadiusSearch);
    let mut iteration = 0;
    let mut check = |radius: f64| {
        probe.span_enter(SpanKind::RadiusIter(iteration));
        let certified = verify(radius);
        probe.span_exit(SpanKind::RadiusIter(iteration), None, 0);
        probe.radius_step(RadiusStep {
            iteration,
            radius,
            certified,
        });
        iteration += 1;
        certified
    };
    let result = (|| {
        if !check(0.0) {
            return 0.0;
        }
        let mut lo = 0.0;
        let mut hi = start;
        let mut grow = 0;
        while check(hi) && grow < 40 {
            lo = hi;
            hi *= 2.0;
            grow += 1;
        }
        if grow == 40 {
            return lo; // effectively unbounded; report the bracket
        }
        for _ in 0..iters {
            let mid = 0.5 * (lo + hi);
            if check(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    })();
    probe.span_exit(SpanKind::RadiusSearch, None, 0);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold() {
        // verify(r) = r <= 0.37
        let r = max_certified_radius(|r| r <= 0.37, 0.01, 40);
        assert!((r - 0.37).abs() < 1e-6);
    }

    #[test]
    fn misclassified_point_gives_zero() {
        assert_eq!(max_certified_radius(|_| false, 0.1, 20), 0.0);
    }

    #[test]
    fn threshold_below_start_is_found() {
        let r = max_certified_radius(|r| r <= 0.003, 0.1, 40);
        assert!((r - 0.003).abs() < 1e-6);
    }

    #[test]
    fn counts_calls_reasonably() {
        let mut calls = 0;
        let _ = max_certified_radius(
            |r| {
                calls += 1;
                r <= 0.25
            },
            0.01,
            20,
        );
        assert!(calls < 70, "too many verifier calls: {calls}");
    }
}
