//! Maximum certified radius via binary search (§6.1).

/// Finds (a lower bound on) the largest radius `r` for which `verify(r)`
/// holds, assuming `verify` is monotone (certifiable at `r` implies
/// certifiable below `r` — true for all verifiers in this crate).
///
/// The search first grows an upper bracket exponentially from `start`, then
/// bisects for `iters` rounds. Returns `0.0` if even an infinitesimal radius
/// fails (e.g. the point is misclassified).
pub fn max_certified_radius(mut verify: impl FnMut(f64) -> bool, start: f64, iters: usize) -> f64 {
    assert!(start > 0.0, "start radius must be positive");
    if !verify(0.0) {
        return 0.0;
    }
    let mut lo = 0.0;
    let mut hi = start;
    let mut grow = 0;
    while verify(hi) && grow < 40 {
        lo = hi;
        hi *= 2.0;
        grow += 1;
    }
    if grow == 40 {
        return lo; // effectively unbounded; report the bracket
    }
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if verify(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold() {
        // verify(r) = r <= 0.37
        let r = max_certified_radius(|r| r <= 0.37, 0.01, 40);
        assert!((r - 0.37).abs() < 1e-6);
    }

    #[test]
    fn misclassified_point_gives_zero() {
        assert_eq!(max_certified_radius(|_| false, 0.1, 20), 0.0);
    }

    #[test]
    fn threshold_below_start_is_found() {
        let r = max_certified_radius(|r| r <= 0.003, 0.1, 40);
        assert!((r - 0.003).abs() < 1e-6);
    }

    #[test]
    fn counts_calls_reasonably() {
        let mut calls = 0;
        let _ = max_certified_radius(
            |r| {
                calls += 1;
                r <= 0.25
            },
            0.01,
            20,
        );
        assert!(calls < 70, "too many verifier calls: {calls}");
    }
}
