//! Cooperative cancellation for long-running certification queries.
//!
//! A [`Deadline`] is a cheap, copyable wall-clock budget threaded through
//! the verifier's outer loops (radius-search iterations, encoder layers,
//! per-class margin queries). The loops poll [`Deadline::check`] *between*
//! units of work and unwind with [`DeadlineExceeded`] when the budget is
//! spent — nothing is interrupted mid-computation, so a query either
//! completes with its usual bitwise-deterministic result or returns a
//! timeout, never a partial bound.
//!
//! [`Deadline::none`] is the no-limit default: it never expires and its
//! check compiles down to a branch on `Option::is_some`, so entry points
//! without a timeout pay nothing.

use std::time::{Duration, Instant};

/// A wall-clock cut-off for cooperative cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No limit: never expires.
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// Expires `budget` from now. Budgets too large to represent fall back
    /// to no limit.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// Expires at `instant`.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// Expires `ms` milliseconds from now; `None` means no limit.
    pub fn after_ms(ms: Option<u64>) -> Self {
        match ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::none(),
        }
    }

    /// Whether a cut-off is configured at all.
    pub fn is_limited(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the cut-off has passed. Always `false` for
    /// [`Deadline::none`] (and does not read the clock in that case).
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left before expiry; `None` when unlimited, zero when already
    /// expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Errors with [`DeadlineExceeded`] once the cut-off has passed.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] if the deadline expired.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.expired() {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// The error unwound through verifier loops when a [`Deadline`] expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verification deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_limited());
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn past_deadline_is_expired() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.is_limited());
        assert!(d.expired());
        assert_eq!(d.check(), Err(DeadlineExceeded));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(d.is_limited());
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn after_ms_maps_none_to_unlimited() {
        assert!(!Deadline::after_ms(None).is_limited());
        assert!(Deadline::after_ms(Some(60_000)).is_limited());
        assert!(Deadline::after_ms(Some(0)).expired());
    }

    #[test]
    fn huge_budget_falls_back_to_unlimited() {
        let d = Deadline::after(Duration::from_secs(u64::MAX));
        assert!(!d.expired());
    }

    #[test]
    fn error_displays() {
        assert!(DeadlineExceeded.to_string().contains("deadline"));
    }
}
