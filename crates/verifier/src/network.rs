//! A verifier-facing view of a trained network plus input-region builders.
//!
//! Both the NLP Transformer and the Vision Transformer reduce to the same
//! verification problem: an embedded token matrix perturbed inside a region,
//! pushed through encoder layers, pooling and the classification head. The
//! [`VerifiableTransformer`] captures that common part; the constructors
//! translate each threat model into a [`Zonotope`] input region.

use deept_core::{PNorm, Zonotope};
use deept_nn::transformer::{ClassifierHead, EncoderLayer, LayerNormKind};
use deept_nn::{TransformerClassifier, VisionTransformer};
use deept_tensor::{parallel, Matrix};

use crate::deadline::{Deadline, DeadlineExceeded};

/// The encoder + head of a Transformer, detached from its embedder.
#[derive(Debug, Clone)]
pub struct VerifiableTransformer {
    /// Encoder layers.
    pub layers: Vec<EncoderLayer>,
    /// Pooling/classification head.
    pub head: ClassifierHead,
    /// Layer-normalization flavour.
    pub layer_norm: LayerNormKind,
    /// Per-head dimension `d_k`.
    pub head_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl From<&TransformerClassifier> for VerifiableTransformer {
    fn from(m: &TransformerClassifier) -> Self {
        VerifiableTransformer {
            layers: m.layers.clone(),
            head: m.head.clone(),
            layer_norm: m.config.layer_norm,
            head_dim: m.config.head_dim(),
            num_classes: m.config.num_classes,
        }
    }
}

impl From<&VisionTransformer> for VerifiableTransformer {
    fn from(m: &VisionTransformer) -> Self {
        VerifiableTransformer {
            layers: m.layers.clone(),
            head: m.head.clone(),
            layer_norm: m.config.layer_norm,
            head_dim: m.config.head_dim(),
            num_classes: m.config.num_classes,
        }
    }
}

/// Threat model T1: an ℓp ball of radius `radius` around the embedding of
/// the word at `position` (§2 / §6.1).
pub fn t1_region(embedded: &Matrix, position: usize, radius: f64, p: PNorm) -> Zonotope {
    Zonotope::from_lp_ball(embedded, radius, p, &[position])
}

/// Threat model T2: for each position, an ℓ∞ box covering the embeddings of
/// the original word and all of its synonyms (§6.7). Positions with no
/// synonyms stay exact.
///
/// `embedding_rows[i]` lists the embedding vectors admissible at position
/// `i` (original first). Positional encodings must already be folded into
/// `embedded`; the synonym embeddings are token embeddings only, so the same
/// positional row is added to each alternative before computing the box.
pub fn t2_region(embedded: &Matrix, alternatives: &[Vec<Vec<f64>>]) -> Zonotope {
    let (n, e) = embedded.shape();
    assert_eq!(alternatives.len(), n, "one alternative set per position");
    let mut center = embedded.clone();
    let mut radii = Matrix::zeros(n, e);
    for (i, alts) in alternatives.iter().enumerate() {
        if alts.is_empty() {
            continue;
        }
        // The box covers the original embedding row plus each alternative
        // (alternatives are full embedding rows at this position).
        let mut lo = embedded.row(i).to_vec();
        let mut hi = embedded.row(i).to_vec();
        for alt in alts {
            assert_eq!(alt.len(), e, "alternative embedding dimension mismatch");
            for (d, &v) in alt.iter().enumerate() {
                lo[d] = lo[d].min(v);
                hi[d] = hi[d].max(v);
            }
        }
        for d in 0..e {
            center.set(i, d, 0.5 * (lo[d] + hi[d]));
            radii.set(i, d, 0.5 * (hi[d] - lo[d]));
        }
    }
    Zonotope::from_box(&center, &radii, PNorm::Linf)
}

/// Result of a certification query.
#[derive(Debug, Clone, PartialEq)]
pub struct CertResult {
    /// Whether robustness was proven.
    pub certified: bool,
    /// Lower bounds of `y_true − y_other` for every other class, in class
    /// order (the true class's own slot holds `f64::INFINITY`).
    pub margins: Vec<f64>,
}

impl CertResult {
    /// Builds the result from margin lower bounds.
    pub fn from_margins(margins: Vec<f64>) -> Self {
        CertResult {
            certified: margins.iter().all(|&m| m > 0.0),
            margins,
        }
    }
}

/// Computes margin lower bounds `lb(y_t − y_f)` for all `f ≠ t` from a
/// logits zonotope (`1 × classes`), exploiting the shared noise symbols —
/// the difference is formed *inside* the abstract domain (§3.2).
pub fn margins_from_zonotope(logits: &Zonotope, true_label: usize) -> Vec<f64> {
    let c = logits.cols();
    assert!(true_label < c, "true label out of range");
    let mut margins = vec![f64::INFINITY; c];
    if logits.has_non_finite() {
        for (f, m) in margins.iter_mut().enumerate() {
            if f != true_label {
                *m = f64::NEG_INFINITY;
            }
        }
        return margins;
    }
    // Each query is independent and deterministic on its own, so the
    // per-class loop parallelizes without affecting certified bounds:
    // results come back in class order regardless of worker count.
    let others: Vec<usize> = (0..c).filter(|&f| f != true_label).collect();
    let bounds = parallel::par_map(&others, 1, |&f| margin_query(logits, true_label, f, c));
    for (&f, b) in others.iter().zip(bounds) {
        margins[f] = b;
    }
    margins
}

/// Lower bound of `y_t − y_f` formed inside the abstract domain. One unit
/// of work of [`margins_from_zonotope`]; pure and independent per class, so
/// the parallel sweep and the sequential deadline-checked sweep produce
/// bitwise-identical values.
fn margin_query(logits: &Zonotope, true_label: usize, f: usize, c: usize) -> f64 {
    let mut l = Matrix::zeros(1, c);
    l.set(0, true_label, 1.0);
    l.set(0, f, -1.0);
    logits.linear_vars(&l, 1, 1).bounds_of(0).0
}

/// [`margins_from_zonotope`] with a cooperative [`Deadline`] polled between
/// per-class margin queries. Without a limit it defers to the parallel
/// sweep; with one it runs the same queries sequentially so the budget is
/// honored at class granularity. Completed results are bitwise identical
/// either way.
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] if the deadline expired between queries.
pub fn margins_from_zonotope_deadline(
    logits: &Zonotope,
    true_label: usize,
    deadline: Deadline,
) -> Result<Vec<f64>, DeadlineExceeded> {
    if !deadline.is_limited() {
        return Ok(margins_from_zonotope(logits, true_label));
    }
    let c = logits.cols();
    assert!(true_label < c, "true label out of range");
    let mut margins = vec![f64::INFINITY; c];
    if logits.has_non_finite() {
        for (f, m) in margins.iter_mut().enumerate() {
            if f != true_label {
                *m = f64::NEG_INFINITY;
            }
        }
        return Ok(margins);
    }
    for (f, mf) in margins.iter_mut().enumerate() {
        if f == true_label {
            continue;
        }
        deadline.check()?;
        *mf = margin_query(logits, true_label, f, c);
    }
    Ok(margins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_region_shape() {
        let emb = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let z = t1_region(&emb, 1, 0.5, PNorm::L2);
        assert_eq!(z.num_phi(), 2);
        let (lo, hi) = z.bounds();
        assert_eq!((lo[0], hi[0]), (1.0, 1.0));
        assert!((lo[2] - 2.5).abs() < 1e-12 && (hi[2] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn t2_region_covers_all_alternatives() {
        let emb = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let alts = vec![vec![vec![0.5, -0.5], vec![-0.3, 0.2]], vec![]];
        let z = t2_region(&emb, &alts);
        let (lo, hi) = z.bounds();
        // Position 0 box must cover original (0,0) and both alternatives.
        assert!(lo[0] <= -0.3 + 1e-12 && hi[0] >= 0.5 - 1e-12);
        assert!(lo[1] <= -0.5 + 1e-12 && hi[1] >= 0.2 - 1e-12);
        // Position 1 is exact.
        assert_eq!((lo[2], hi[2]), (1.0, 1.0));
    }

    #[test]
    fn margins_use_relational_information() {
        // Logits y0 = ε, y1 = ε: y0 − y1 = 0 exactly; naive interval
        // subtraction would give ±2.
        let z = Zonotope::from_parts(
            1,
            2,
            vec![0.0, 0.0],
            Matrix::zeros(2, 0),
            Matrix::from_rows(&[&[1.0], &[1.0]]),
            PNorm::Linf,
        );
        let m = margins_from_zonotope(&z, 0);
        assert_eq!(m[1], 0.0);
        assert_eq!(m[0], f64::INFINITY);
        assert!(!CertResult::from_margins(m).certified);
    }

    #[test]
    fn margins_are_identical_at_any_worker_count() {
        let _g = parallel::test_lock();
        // A 6-class logits zonotope with shared φ and ε symbols; the
        // per-class queries must return bitwise-equal margins no matter how
        // the class loop is chunked across workers.
        let c = 6;
        let center: Vec<f64> = (0..c).map(|i| 0.1 * i as f64).collect();
        let mut phi = Matrix::zeros(c, 3);
        let mut eps = Matrix::zeros(c, 4);
        for i in 0..c {
            for j in 0..3 {
                phi.set(i, j, ((i * 3 + j) as f64 * 0.37).sin() * 0.2);
            }
            for j in 0..4 {
                eps.set(i, j, ((i * 4 + j) as f64 * 0.53).cos() * 0.1);
            }
        }
        let z = Zonotope::from_parts(1, c, center, phi, eps, PNorm::L2);
        parallel::set_thread_override(Some(1));
        let base = margins_from_zonotope(&z, 2);
        for threads in [2usize, 8] {
            parallel::set_thread_override(Some(threads));
            assert_eq!(margins_from_zonotope(&z, 2), base, "threads = {threads}");
        }
        parallel::set_thread_override(None);
        assert_eq!(base[2], f64::INFINITY);
        assert!(base
            .iter()
            .enumerate()
            .all(|(f, m)| f == 2 || m.is_finite()));
    }

    #[test]
    fn deadline_margins_match_parallel_path_bitwise() {
        let c = 5;
        let center: Vec<f64> = (0..c).map(|i| 0.3 * i as f64).collect();
        let mut phi = Matrix::zeros(c, 2);
        let mut eps = Matrix::zeros(c, 3);
        for i in 0..c {
            for j in 0..2 {
                phi.set(i, j, ((i * 2 + j) as f64 * 0.41).sin() * 0.3);
            }
            for j in 0..3 {
                eps.set(i, j, ((i * 3 + j) as f64 * 0.29).cos() * 0.2);
            }
        }
        let z = Zonotope::from_parts(1, c, center, phi, eps, PNorm::L1);
        let plain = margins_from_zonotope(&z, 1);
        // A generous deadline routes through the sequential checked sweep.
        let limited = margins_from_zonotope_deadline(
            &z,
            1,
            Deadline::after(std::time::Duration::from_secs(3600)),
        )
        .expect("generous deadline must not expire");
        assert_eq!(plain, limited);
        // No limit routes through the parallel sweep.
        let unlimited = margins_from_zonotope_deadline(&z, 1, Deadline::none()).unwrap();
        assert_eq!(plain, unlimited);
    }

    #[test]
    fn expired_deadline_aborts_margin_queries() {
        let z = Zonotope::from_parts(
            1,
            3,
            vec![0.0, 1.0, 2.0],
            Matrix::zeros(3, 0),
            Matrix::zeros(3, 0),
            PNorm::Linf,
        );
        let r = margins_from_zonotope_deadline(
            &z,
            0,
            Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        );
        assert_eq!(r, Err(DeadlineExceeded));
    }

    #[test]
    fn non_finite_logits_fail_certification() {
        let z = Zonotope::from_parts(
            1,
            2,
            vec![f64::INFINITY, 0.0],
            Matrix::zeros(2, 0),
            Matrix::zeros(2, 0),
            PNorm::Linf,
        );
        let m = margins_from_zonotope(&z, 0);
        assert_eq!(m[1], f64::NEG_INFINITY);
    }
}
