//! Randomized adversarial search inside a perturbation region.
//!
//! Not part of the certification pipeline — this is the *falsification*
//! counterpart used by the test suites and experiments: a certified region
//! must never contain a point this attack can find, and the gap between the
//! certified radius and the smallest successful attack radius measures
//! verifier tightness.

use deept_core::PNorm;
use deept_nn::TransformerClassifier;
use deept_tensor::Matrix;
use rand::Rng;

/// Attempts to flip the classification of `tokens` by perturbing the
/// embedding at `position` within an ℓp ball of `radius`, using random
/// sampling plus coordinate-sign probing.
///
/// Returns the adversarial embedding matrix if an attack is found.
pub fn attack_t1(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    samples: usize,
    rng: &mut impl Rng,
) -> Option<Matrix> {
    let emb = model.embed(tokens);
    let label = model.predict(tokens);
    let e = emb.cols();
    let classify = |x: &Matrix| -> usize {
        deept_tensor::ops::argmax(model.classify(&model.encode(x)).row(0))
    };
    let try_delta = |delta: &[f64]| -> Option<Matrix> {
        let mut x = emb.clone();
        for (d, &dv) in delta.iter().enumerate() {
            *x.at_mut(position, d) += dv;
        }
        (classify(&x) != label).then_some(x)
    };
    for s in 0..samples {
        let mut delta: Vec<f64> = (0..e).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        if s % 2 == 0 {
            // Half the samples probe the sphere's surface (extreme points).
            for d in &mut delta {
                *d = d.signum();
            }
        }
        let n = p.norm(&delta).max(1e-12);
        for d in &mut delta {
            *d *= radius / n;
        }
        if let Some(adv) = try_delta(&delta) {
            return Some(adv);
        }
    }
    None
}

/// Smallest radius (within the budget) at which [`attack_t1`] succeeds,
/// searched over a geometric grid. Returns `None` if no attack is found up
/// to `max_radius`. Upper-bounds the true robustness radius.
pub fn min_attack_radius(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    max_radius: f64,
    p: PNorm,
    samples_per_radius: usize,
    rng: &mut impl Rng,
) -> Option<f64> {
    let mut r = max_radius;
    let mut found = None;
    for _ in 0..24 {
        if attack_t1(model, tokens, position, r, p, samples_per_radius, rng).is_some() {
            found = Some(r);
            r *= 0.8;
        } else {
            break;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_nn::transformer::{LayerNormKind, TransformerConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 10,
                max_len: 5,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 8,
                num_layers: 1,
                num_classes: 2,
                layer_norm: LayerNormKind::NoStd,
            },
            &mut rng,
        )
    }

    #[test]
    fn huge_radius_finds_attacks_tiny_radius_does_not() {
        let m = model();
        let tokens = [1usize, 2, 3];
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // A random network almost surely flips under enormous perturbations.
        let big = attack_t1(&m, &tokens, 0, 1000.0, PNorm::L2, 200, &mut rng);
        assert!(big.is_some(), "no attack found even at radius 1000");
        let tiny = attack_t1(&m, &tokens, 0, 1e-9, PNorm::L2, 50, &mut rng);
        assert!(tiny.is_none(), "attack at an infinitesimal radius");
    }

    #[test]
    fn attack_respects_the_ball() {
        let m = model();
        let tokens = [1usize, 2, 3];
        let emb = m.embed(&tokens);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        if let Some(adv) = attack_t1(&m, &tokens, 1, 0.7, PNorm::L2, 400, &mut rng) {
            let delta = deept_tensor::vec_sub(adv.row(1), emb.row(1));
            assert!(deept_tensor::l2_norm(&delta) <= 0.7 + 1e-9);
            // Unattacked rows are untouched.
            assert_eq!(adv.row(0), emb.row(0));
        }
    }
}
