//! CROWN-style linear-relaxation baselines (the paper's comparison points,
//! [47]) plus interval bound propagation.
//!
//! Every variable carries *linear* lower/upper bounds in the input
//! perturbation symbols `δ`:
//! `lw·δ + lb ≤ x ≤ uw·δ + ub`, concretized through the dual norm of the
//! input region. Nonlinearities substitute sound linear relaxation lines;
//! products use McCormick envelopes; the softmax is composed as
//! `exp → sum → reciprocal → multiply` — the baseline's composition (§5.4),
//! *not* DeepT's favourable rewriting.
//!
//! Three collapse policies realize the three baselines:
//!
//! * [`CollapsePolicy::Never`] — bounds stay linear in `δ` end-to-end,
//!   i.e. every concretization is a full backsubstitution to the input.
//!   This plays the role of **CROWN-Backward**. (Deviation from the
//!   original: we maintain input-linear forms eagerly rather than running a
//!   per-neuron backward pass, so our memory/time do not blow up the way
//!   the paper reports for large sentences; precision behaviour matches.)
//! * [`CollapsePolicy::PerLayer`] — at every layer boundary the bound basis
//!   is *re-based*: the current variables' concrete intervals become a
//!   fresh box of input symbols, so relational information is kept within
//!   a layer but not across layers. This models CROWN-BaF's early-stopped
//!   backsubstitution: identical to Backward at depth 1, degrading with
//!   depth — the paper's observed behaviour.
//! * [`CollapsePolicy::Always`] — collapse after every operation: plain
//!   interval bound propagation (IBP), a sanity baseline.

use deept_core::elementwise::{
    exp_relaxation, reciprocal_relaxation, sqrt_relaxation, tanh_relaxation,
};
use deept_core::PNorm;
use deept_nn::transformer::{EncoderLayer, LayerNorm, LayerNormKind};
use deept_tensor::Matrix;

use crate::network::{CertResult, VerifiableTransformer};

/// When linear bounds are collapsed to constant intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollapsePolicy {
    /// Never collapse: full input-linear bounds end-to-end (a forward
    /// LiRPA-style analysis).
    Never,
    /// Re-base the symbol basis at every layer boundary (CROWN-BaF role).
    PerLayer,
    /// Run both [`CollapsePolicy::Never`] and [`CollapsePolicy::PerLayer`]
    /// and keep the tighter margin per query (CROWN-Backward role: true
    /// backsubstitution dominates both forward analyses; taking their meet
    /// is our sound, slower stand-in — see DESIGN.md).
    Best,
    /// Collapse after every operation (interval propagation).
    Always,
}

/// The input perturbation region for the linear domain.
#[derive(Debug, Clone, PartialEq)]
pub struct CrownInput {
    /// Embedded sequence center (`N × E`).
    pub center: Matrix,
    /// `(flat variable index, radius)` of each perturbation symbol.
    pub symbols: Vec<(usize, f64)>,
    /// Norm jointly bounding the symbols (for `p ∈ {1,2}` all radii must be
    /// equal; for `p = ∞` the region is a box with per-symbol radii).
    pub p: PNorm,
}

impl CrownInput {
    /// T1: an ℓp ball of `radius` around the word at `position`.
    pub fn t1(center: &Matrix, position: usize, radius: f64, p: PNorm) -> Self {
        let e = center.cols();
        let symbols = (0..e).map(|d| (position * e + d, radius)).collect();
        CrownInput {
            center: center.clone(),
            symbols,
            p,
        }
    }

    /// T2: a per-dimension box (`p = ∞`) with the given radii over flat
    /// variable indices.
    pub fn boxed(center: &Matrix, radii: &[(usize, f64)]) -> Self {
        CrownInput {
            center: center.clone(),
            symbols: radii.to_vec(),
            p: PNorm::Linf,
        }
    }

    /// `sup { w · δ }` over the region, for a coefficient row `w` aligned
    /// with `symbols`.
    fn sup(&self, w: &[f64]) -> f64 {
        match self.p {
            PNorm::Linf => w
                .iter()
                .zip(&self.symbols)
                .map(|(&c, &(_, r))| c.abs() * r)
                .sum(),
            p => {
                let r = self.symbols.first().map_or(0.0, |&(_, r)| r);
                debug_assert!(
                    self.symbols.iter().all(|&(_, ri)| (ri - r).abs() < 1e-12),
                    "lp ball requires uniform radii"
                );
                r * p.dual_norm(w)
            }
        }
    }
}

/// Linear lower/upper bounds of a matrix of variables in the input symbols.
#[derive(Debug, Clone)]
pub struct LinBounds {
    rows: usize,
    cols: usize,
    lw: Matrix,
    lb: Vec<f64>,
    uw: Matrix,
    ub: Vec<f64>,
}

impl LinBounds {
    /// Bounds of the input region itself.
    pub fn from_input(input: &CrownInput) -> Self {
        let n = input.center.len();
        let s = input.symbols.len();
        let mut w = Matrix::zeros(n, s);
        for (j, &(var, _)) in input.symbols.iter().enumerate() {
            w.set(var, j, 1.0);
        }
        LinBounds {
            rows: input.center.rows(),
            cols: input.center.cols(),
            lw: w.clone(),
            lb: input.center.as_slice().to_vec(),
            uw: w,
            ub: input.center.as_slice().to_vec(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.lb.len()
    }

    /// Logical shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Concrete interval bounds of every variable. NaNs (arising from
    /// `0 · ∞` after an upstream overflow) are sanitized to `±∞`: "no
    /// information" rather than a poisoned comparison.
    pub fn bounds(&self, input: &CrownInput) -> (Vec<f64>, Vec<f64>) {
        let n = self.n_vars();
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        for k in 0..n {
            let l = self.lb[k] - input.sup(self.lw.row(k));
            let u = self.ub[k] + input.sup(self.uw.row(k));
            lo.push(if l.is_nan() { f64::NEG_INFINITY } else { l });
            hi.push(if u.is_nan() { f64::INFINITY } else { u });
        }
        (lo, hi)
    }

    /// Replaces linear bounds by their concrete intervals (loses all
    /// relational information).
    pub fn collapse(&self, input: &CrownInput) -> LinBounds {
        let (lo, hi) = self.bounds(input);
        LinBounds {
            rows: self.rows,
            cols: self.cols,
            lw: Matrix::zeros(self.n_vars(), self.lw.cols()),
            lb: lo,
            uw: Matrix::zeros(self.n_vars(), self.uw.cols()),
            ub: hi,
        }
    }

    /// Builds each output variable as a constant-coefficient affine
    /// combination of input variables: `y_o = Σ_k coeffs(o, k)·x_k + bias_o`,
    /// selecting the lower/upper parent expressions by coefficient sign.
    fn affine_map(
        &self,
        out_rows: usize,
        out_cols: usize,
        bias: &[f64],
        terms: impl Fn(usize) -> Vec<(usize, f64)>,
    ) -> LinBounds {
        let n_out = out_rows * out_cols;
        let s = self.lw.cols();
        let mut lw = Matrix::zeros(n_out, s);
        let mut uw = Matrix::zeros(n_out, s);
        let mut lb = vec![0.0; n_out];
        let mut ub = vec![0.0; n_out];
        for o in 0..n_out {
            lb[o] = bias[o];
            ub[o] = bias[o];
            for (k, c) in terms(o) {
                if c == 0.0 {
                    continue;
                }
                let (wsrc_l, bsrc_l, wsrc_u, bsrc_u) = if c > 0.0 {
                    (self.lw.row(k), self.lb[k], self.uw.row(k), self.ub[k])
                } else {
                    (self.uw.row(k), self.ub[k], self.lw.row(k), self.lb[k])
                };
                for (d, &x) in lw.row_mut(o).iter_mut().zip(wsrc_l) {
                    *d += c * x;
                }
                lb[o] += c * bsrc_l;
                for (d, &x) in uw.row_mut(o).iter_mut().zip(wsrc_u) {
                    *d += c * x;
                }
                ub[o] += c * bsrc_u;
            }
        }
        LinBounds {
            rows: out_rows,
            cols: out_cols,
            lw,
            lb,
            uw,
            ub,
        }
    }

    /// `X ↦ X · W` (+ optional row bias).
    pub fn matmul_right(&self, w: &Matrix, bias: Option<&[f64]>) -> LinBounds {
        assert_eq!(w.rows(), self.cols, "matmul_right shape mismatch");
        let d = w.cols();
        let bias_vec: Vec<f64> = match bias {
            Some(b) => {
                assert_eq!(b.len(), d);
                (0..self.rows).flat_map(|_| b.iter().copied()).collect()
            }
            None => vec![0.0; self.rows * d],
        };
        let cols = self.cols;
        self.affine_map(self.rows, d, &bias_vec, |o| {
            let (i, dd) = (o / d, o % d);
            (0..cols).map(|j| (i * cols + j, w.at(j, dd))).collect()
        })
    }

    /// Element-wise sum of two bound sets.
    pub fn add(&self, other: &LinBounds) -> LinBounds {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        LinBounds {
            rows: self.rows,
            cols: self.cols,
            lw: self.lw.add(&other.lw),
            lb: deept_tensor::vec_add(&self.lb, &other.lb),
            uw: self.uw.add(&other.uw),
            ub: deept_tensor::vec_add(&self.ub, &other.ub),
        }
    }

    /// Scales all variables by `s`.
    pub fn scale(&self, s: f64) -> LinBounds {
        if s >= 0.0 {
            LinBounds {
                rows: self.rows,
                cols: self.cols,
                lw: self.lw.scale(s),
                lb: deept_tensor::vec_scale(&self.lb, s),
                uw: self.uw.scale(s),
                ub: deept_tensor::vec_scale(&self.ub, s),
            }
        } else {
            LinBounds {
                rows: self.rows,
                cols: self.cols,
                lw: self.uw.scale(s),
                lb: deept_tensor::vec_scale(&self.ub, s),
                uw: self.lw.scale(s),
                ub: deept_tensor::vec_scale(&self.lb, s),
            }
        }
    }

    /// Multiplies each column `j` by the constant `w[j]` (sign-aware).
    pub fn mul_row_weights(&self, w: &[f64]) -> LinBounds {
        assert_eq!(w.len(), self.cols);
        let cols = self.cols;
        self.affine_map(self.rows, self.cols, &vec![0.0; self.n_vars()], |o| {
            vec![(o, w[o % cols])]
        })
    }

    /// Adds the row vector `b` to every logical row.
    pub fn add_row_bias(&self, b: &[f64]) -> LinBounds {
        assert_eq!(b.len(), self.cols);
        let mut out = self.clone();
        for i in 0..self.rows {
            for (j, &bj) in b.iter().enumerate() {
                out.lb[i * self.cols + j] += bj;
                out.ub[i * self.cols + j] += bj;
            }
        }
        out
    }

    /// Subtracts from every logical row its mean (exact affine).
    pub fn subtract_row_mean(&self) -> LinBounds {
        let c = self.cols;
        let w = Matrix::from_fn(c, c, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - 1.0 / c as f64
        });
        self.matmul_right(&w, None)
    }

    /// Keeps the listed logical rows.
    pub fn select_rows(&self, idx: &[usize]) -> LinBounds {
        let pick = |m: &Matrix, v: &[f64]| {
            let mut w = Matrix::zeros(idx.len() * self.cols, m.cols());
            let mut b = Vec::with_capacity(idx.len() * self.cols);
            for (r, &i) in idx.iter().enumerate() {
                for j in 0..self.cols {
                    w.row_mut(r * self.cols + j)
                        .copy_from_slice(m.row(i * self.cols + j));
                    b.push(v[i * self.cols + j]);
                }
            }
            (w, b)
        };
        let (lw, lb) = pick(&self.lw, &self.lb);
        let (uw, ub) = pick(&self.uw, &self.ub);
        LinBounds {
            rows: idx.len(),
            cols: self.cols,
            lw,
            lb,
            uw,
            ub,
        }
    }

    /// Horizontal concatenation.
    pub fn concat_cols(parts: &[LinBounds]) -> LinBounds {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        let s = parts[0].lw.cols();
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let n = rows * cols;
        let mut lw = Matrix::zeros(n, s);
        let mut uw = Matrix::zeros(n, s);
        let mut lb = vec![0.0; n];
        let mut ub = vec![0.0; n];
        for i in 0..rows {
            let mut j0 = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols row mismatch");
                for j in 0..p.cols {
                    let dst = i * cols + j0 + j;
                    let src = i * p.cols + j;
                    lw.row_mut(dst).copy_from_slice(p.lw.row(src));
                    uw.row_mut(dst).copy_from_slice(p.uw.row(src));
                    lb[dst] = p.lb[src];
                    ub[dst] = p.ub[src];
                }
                j0 += p.cols;
            }
        }
        LinBounds {
            rows,
            cols,
            lw,
            lb,
            uw,
            ub,
        }
    }

    /// Applies per-variable linear relaxation lines
    /// `lo_line(x) ≤ f(x) ≤ up_line(x)` given as `(λ, μ)` pairs.
    fn apply_lines(&self, lines: impl Fn(usize) -> ((f64, f64), (f64, f64))) -> LinBounds {
        let n = self.n_vars();
        let s = self.lw.cols();
        let mut lw = Matrix::zeros(n, s);
        let mut uw = Matrix::zeros(n, s);
        let mut lb = vec![0.0; n];
        let mut ub = vec![0.0; n];
        for k in 0..n {
            let ((ll, lm), (ul, um)) = lines(k);
            let (src_w, src_b) = if ll >= 0.0 {
                (self.lw.row(k), self.lb[k])
            } else {
                (self.uw.row(k), self.ub[k])
            };
            for (d, &x) in lw.row_mut(k).iter_mut().zip(src_w) {
                *d = ll * x;
            }
            lb[k] = ll * src_b + lm;
            let (src_w, src_b) = if ul >= 0.0 {
                (self.uw.row(k), self.ub[k])
            } else {
                (self.lw.row(k), self.lb[k])
            };
            for (d, &x) in uw.row_mut(k).iter_mut().zip(src_w) {
                *d = ul * x;
            }
            ub[k] = ul * src_b + um;
        }
        LinBounds {
            rows: self.rows,
            cols: self.cols,
            lw,
            lb,
            uw,
            ub,
        }
    }

    /// ReLU with the CROWN relaxation pair (chord above, `x` or `0` below).
    pub fn relu(&self, input: &CrownInput) -> LinBounds {
        let (lo, hi) = self.bounds(input);
        self.apply_lines(|k| {
            let (l, u) = (lo[k], hi[k]);
            if !l.is_finite() || !u.is_finite() {
                return ((0.0, f64::NEG_INFINITY), (0.0, f64::INFINITY));
            }
            if u <= 0.0 {
                ((0.0, 0.0), (0.0, 0.0))
            } else if l >= 0.0 {
                ((1.0, 0.0), (1.0, 0.0))
            } else {
                let lam = u / (u - l);
                let lower = if u >= -l { (1.0, 0.0) } else { (0.0, 0.0) };
                (lower, (lam, -lam * l))
            }
        })
    }

    fn relaxed(
        &self,
        input: &CrownInput,
        relax: impl Fn(f64, f64) -> deept_core::elementwise::Relaxation,
    ) -> LinBounds {
        let (lo, hi) = self.bounds(input);
        self.apply_lines(|k| {
            if !lo[k].is_finite() || !hi[k].is_finite() {
                return ((0.0, f64::NEG_INFINITY), (0.0, f64::INFINITY));
            }
            let r = relax(lo[k], hi[k]);
            ((r.lambda, r.mu - r.beta), (r.lambda, r.mu + r.beta))
        })
    }

    /// tanh relaxation.
    pub fn tanh(&self, input: &CrownInput) -> LinBounds {
        self.relaxed(input, tanh_relaxation)
    }

    /// exp relaxation (positive lower bound).
    pub fn exp(&self, input: &CrownInput) -> LinBounds {
        self.relaxed(input, exp_relaxation)
    }

    /// Reciprocal relaxation (requires positive inputs).
    ///
    /// # Panics
    ///
    /// Panics if a variable may be non-positive.
    pub fn reciprocal(&self, input: &CrownInput) -> LinBounds {
        self.relaxed(input, reciprocal_relaxation)
    }

    /// Square-root relaxation (requires positive inputs).
    ///
    /// # Panics
    ///
    /// Panics if a variable may be non-positive.
    pub fn sqrt(&self, input: &CrownInput) -> LinBounds {
        self.relaxed(input, sqrt_relaxation)
    }

    /// Square-root relaxation over bounds floored at `floor`, for inputs
    /// known on domain grounds to be `≥ floor` (e.g. variance + ε).
    pub fn sqrt_floored(&self, input: &CrownInput, floor: f64) -> LinBounds {
        self.relaxed(input, move |l, u| {
            sqrt_relaxation(l.max(floor), u.max(floor))
        })
    }

    /// Linear-bound matrix product `a (N×K) · b (K×M)` via per-term
    /// McCormick envelopes: each product `x·y` is bounded below by the
    /// better of the two lower envelopes and above by the better of the two
    /// upper envelopes (chosen by concretized value).
    pub fn matmul_mccormick(&self, other: &LinBounds, input: &CrownInput) -> LinBounds {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (n, kk, m) = (self.rows, self.cols, other.cols);
        let (alo, ahi) = self.bounds(input);
        let (blo, bhi) = other.bounds(input);
        let s = self.lw.cols();
        let n_out = n * m;
        let mut lw = Matrix::zeros(n_out, s);
        let mut uw = Matrix::zeros(n_out, s);
        let mut lb = vec![0.0; n_out];
        let mut ub = vec![0.0; n_out];

        for i in 0..n {
            for j in 0..m {
                let o = i * m + j;
                for k in 0..kk {
                    let xa = i * kk + k;
                    let yb = k * m + j;
                    let (lx, ux) = (alo[xa], ahi[xa]);
                    let (ly, uy) = (blo[yb], bhi[yb]);
                    if !(lx.is_finite() && ux.is_finite() && ly.is_finite() && uy.is_finite()) {
                        lb[o] = f64::NEG_INFINITY;
                        ub[o] = f64::INFINITY;
                        continue;
                    }
                    // Lower envelopes: xy ≥ uy·x + ux·y − ux·uy and
                    // xy ≥ ly·x + lx·y − lx·ly. Pick the one with the larger
                    // concretized worst case.
                    let cand_l = [(uy, ux, -ux * uy), (ly, lx, -lx * ly)];
                    let best_l = cand_l
                        .iter()
                        .map(|&(cx, cy, c)| {
                            let v = worst_lower(self, xa, cx, input)
                                + worst_lower(other, yb, cy, input)
                                + c;
                            (v, (cx, cy, c))
                        })
                        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
                        .expect("two candidates")
                        .1;
                    accumulate_pair(
                        self, other, xa, yb, best_l.0, best_l.1, best_l.2, false, &mut lw, &mut lb,
                        o,
                    );
                    // Upper envelopes: xy ≤ uy·x + lx·y − lx·uy and
                    // xy ≤ ly·x + ux·y − ux·ly.
                    let cand_u = [(uy, lx, -lx * uy), (ly, ux, -ux * ly)];
                    let best_u = cand_u
                        .iter()
                        .map(|&(cx, cy, c)| {
                            let v = worst_upper(self, xa, cx, input)
                                + worst_upper(other, yb, cy, input)
                                + c;
                            (v, (cx, cy, c))
                        })
                        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
                        .expect("two candidates")
                        .1;
                    accumulate_pair(
                        self, other, xa, yb, best_u.0, best_u.1, best_u.2, true, &mut uw, &mut ub,
                        o,
                    );
                }
            }
        }
        LinBounds {
            rows: n,
            cols: m,
            lw,
            lb,
            uw,
            ub,
        }
    }

    /// CROWN-composed softmax across each logical row (§5.4 baseline
    /// composition: exp, sum, reciprocal, multiply).
    pub fn softmax_rows(&self, input: &CrownInput) -> LinBounds {
        let e = self.exp(input);
        // Row sums: S_i = Σ_j e_{ij}, as a (rows × 1) affine map.
        let cols = self.cols;
        let sums = e.affine_map(self.rows, 1, &vec![0.0; self.rows], |o| {
            (0..cols).map(|j| (o * cols + j, 1.0)).collect()
        });
        // The true denominator Σ_j e^{ν_j} is strictly positive but its
        // abstract lower bound can cancel to ≤ 0 under huge radii; floor it
        // at a tiny positive value (domain-sound).
        let recip = sums.relaxed(input, |l, u| {
            reciprocal_relaxation(l.max(1e-9), u.max(1e-9))
        });
        // Broadcast recip across the row, then multiply element-wise:
        // y_{ij} = e_{ij} · r_i, via a 1×1-blocked McCormick product.
        let ones = Matrix::full(1, cols, 1.0);
        let recip_b = recip.matmul_right(&ones, None);
        e.mul_elementwise(&recip_b, input)
    }

    /// Element-wise McCormick product of equal-shaped bound sets.
    pub fn mul_elementwise(&self, other: &LinBounds, input: &CrownInput) -> LinBounds {
        assert_eq!(self.shape(), other.shape(), "mul shape mismatch");
        // Reuse matmul with K = 1 per variable: treat each variable pair as
        // a 1×1 product and stitch results.
        let (alo, ahi) = self.bounds(input);
        let (blo, bhi) = other.bounds(input);
        let n = self.n_vars();
        let s = self.lw.cols();
        let mut lw = Matrix::zeros(n, s);
        let mut uw = Matrix::zeros(n, s);
        let mut lb = vec![0.0; n];
        let mut ub = vec![0.0; n];
        for k in 0..n {
            let (lx, ux) = (alo[k], ahi[k]);
            let (ly, uy) = (blo[k], bhi[k]);
            if !(lx.is_finite() && ux.is_finite() && ly.is_finite() && uy.is_finite()) {
                lb[k] = f64::NEG_INFINITY;
                ub[k] = f64::INFINITY;
                continue;
            }
            let cand_l = [(uy, ux, -ux * uy), (ly, lx, -lx * ly)];
            let (cx, cy, c) = cand_l
                .iter()
                .map(|&(cx, cy, c)| {
                    let v = worst_lower(self, k, cx, input) + worst_lower(other, k, cy, input) + c;
                    (v, (cx, cy, c))
                })
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
                .expect("candidates")
                .1;
            accumulate_pair(self, other, k, k, cx, cy, c, false, &mut lw, &mut lb, k);
            let cand_u = [(uy, lx, -lx * uy), (ly, ux, -ux * ly)];
            let (cx, cy, c) = cand_u
                .iter()
                .map(|&(cx, cy, c)| {
                    let v = worst_upper(self, k, cx, input) + worst_upper(other, k, cy, input) + c;
                    (v, (cx, cy, c))
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
                .expect("candidates")
                .1;
            accumulate_pair(self, other, k, k, cx, cy, c, true, &mut uw, &mut ub, k);
        }
        LinBounds {
            rows: self.rows,
            cols: self.cols,
            lw,
            lb,
            uw,
            ub,
        }
    }
}

/// Concretized lower bound of `coef · var_k`.
fn worst_lower(b: &LinBounds, k: usize, coef: f64, input: &CrownInput) -> f64 {
    if coef >= 0.0 {
        coef * (b.lb[k] - input.sup(b.lw.row(k)))
    } else {
        coef * (b.ub[k] + input.sup(b.uw.row(k)))
    }
}

/// Concretized upper bound of `coef · var_k`.
fn worst_upper(b: &LinBounds, k: usize, coef: f64, input: &CrownInput) -> f64 {
    if coef >= 0.0 {
        coef * (b.ub[k] + input.sup(b.uw.row(k)))
    } else {
        coef * (b.lb[k] - input.sup(b.lw.row(k)))
    }
}

/// Adds the linearized product term `cx·a_ka + cy·b_kb + c` into output row
/// `o` of `(w, bias)`, selecting each parent's lower or upper expression so
/// the result stays a sound lower (`upper = false`) or upper bound.
#[allow(clippy::too_many_arguments)]
fn accumulate_pair(
    a: &LinBounds,
    b: &LinBounds,
    ka: usize,
    kb: usize,
    cx: f64,
    cy: f64,
    c: f64,
    upper: bool,
    w: &mut Matrix,
    bias: &mut [f64],
    o: usize,
) {
    fn pick(src: &LinBounds, k: usize, coef: f64, upper: bool) -> (Vec<f64>, f64) {
        if (coef >= 0.0) != upper {
            (src.lw.row(k).to_vec(), src.lb[k])
        } else {
            (src.uw.row(k).to_vec(), src.ub[k])
        }
    }
    let (wx, bx) = pick(a, ka, cx, upper);
    let (wy, by) = pick(b, kb, cy, upper);
    let row = w.row_mut(o);
    for ((d, x), y) in row.iter_mut().zip(wx).zip(wy) {
        *d += cx * x + cy * y;
    }
    bias[o] += cx * bx + cy * by + c;
}

/// Configuration of the linear-relaxation verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrownConfig {
    /// Collapse policy selecting the baseline variant.
    pub collapse: CollapsePolicy,
}

impl CrownConfig {
    /// CROWN-BaF role.
    pub fn baf() -> Self {
        CrownConfig {
            collapse: CollapsePolicy::PerLayer,
        }
    }

    /// CROWN-Backward role (meet of the two forward analyses).
    pub fn backward() -> Self {
        CrownConfig {
            collapse: CollapsePolicy::Best,
        }
    }

    /// Forward LiRPA-style bounds with no collapse.
    pub fn forward() -> Self {
        CrownConfig {
            collapse: CollapsePolicy::Never,
        }
    }

    /// Interval propagation.
    pub fn interval() -> Self {
        CrownConfig {
            collapse: CollapsePolicy::Always,
        }
    }
}

/// Propagates linear bounds through the network, returning the logits
/// bounds together with the symbol basis they are expressed in (the basis
/// differs from `input` under [`CollapsePolicy::PerLayer`]).
pub fn propagate(
    net: &VerifiableTransformer,
    input: &CrownInput,
    cfg: &CrownConfig,
) -> (LinBounds, CrownInput) {
    propagate_probed(net, input, cfg, &deept_telemetry::NoopProbe)
}

/// [`propagate`] with telemetry spans per encoder layer, for hotspot parity
/// with the DeepT verifier. Linear bounds carry no zonotope stats, so only
/// durations are reported.
pub fn propagate_probed(
    net: &VerifiableTransformer,
    input: &CrownInput,
    cfg: &CrownConfig,
    probe: &dyn deept_telemetry::Probe,
) -> (LinBounds, CrownInput) {
    use deept_telemetry::SpanKind;
    probe.span_enter(SpanKind::Propagate);
    // `Best` is resolved in `certify`; a bare propagate falls back to the
    // never-collapse analysis.
    let policy = if cfg.collapse == CollapsePolicy::Best {
        CollapsePolicy::Never
    } else {
        cfg.collapse
    };
    let mut x = LinBounds::from_input(input);
    let mut basis = input.clone();
    let layers = net.layers.len();
    for (i, layer) in net.layers.iter().enumerate() {
        probe.span_enter(SpanKind::EncoderLayer(i));
        x = encoder_layer(&x, layer, net, &basis, policy);
        if policy == CollapsePolicy::PerLayer && i + 1 < layers {
            let (nx, nb) = rebase(&x, &basis);
            x = nx;
            basis = nb;
        }
        probe.span_exit(SpanKind::EncoderLayer(i), None, 0);
    }
    probe.span_enter(SpanKind::Pooling);
    let pooled = x.select_rows(&[0]);
    let hidden = pooled
        .matmul_right(&net.head.wp, Some(net.head.bp.row(0)))
        .tanh(&basis);
    let logits = hidden.matmul_right(&net.head.wc, Some(net.head.bc.row(0)));
    probe.span_exit(SpanKind::Pooling, None, 0);
    probe.span_exit(SpanKind::Propagate, None, 0);
    (logits, basis)
}

/// Replaces the symbol basis: each variable's concrete interval becomes a
/// fresh box symbol, keeping nothing but intervals across the boundary.
fn rebase(b: &LinBounds, basis: &CrownInput) -> (LinBounds, CrownInput) {
    let (lo, hi) = b.bounds(basis);
    let (rows, cols) = b.shape();
    let mut center = Matrix::zeros(rows, cols);
    let mut radii = Vec::new();
    for k in 0..b.n_vars() {
        let (l, u) = (lo[k], hi[k]);
        if l.is_finite() && u.is_finite() {
            center.as_mut_slice()[k] = 0.5 * (l + u);
            let r = 0.5 * (u - l);
            if r > 0.0 {
                radii.push((k, r));
            }
        } else {
            // Unbounded variable: keep a huge but finite box so downstream
            // arithmetic stays NaN-free; certification will fail anyway.
            center.as_mut_slice()[k] = 0.0;
            radii.push((k, 1e30));
        }
    }
    let input = CrownInput::boxed(&center, &radii);
    (LinBounds::from_input(&input), input)
}

fn encoder_layer(
    x: &LinBounds,
    layer: &EncoderLayer,
    net: &VerifiableTransformer,
    input: &CrownInput,
    policy: CollapsePolicy,
) -> LinBounds {
    let always = |b: LinBounds| -> LinBounds {
        if policy == CollapsePolicy::Always {
            b.collapse(input)
        } else {
            b
        }
    };
    let scale = 1.0 / (net.head_dim as f64).sqrt();
    let mut heads = Vec::with_capacity(layer.attention.heads.len());
    for h in &layer.attention.heads {
        let q = x.matmul_right(&h.wq, None).scale(scale);
        let k = x.matmul_right(&h.wk, None);
        let v = x.matmul_right(&h.wv, None);
        let kt = transpose(&k);
        let scores = always(q.matmul_mccormick(&kt, input));
        let attn = always(scores.softmax_rows(input));
        heads.push(always(attn.matmul_mccormick(&v, input)));
    }
    let merged = LinBounds::concat_cols(&heads);
    let z = always(merged.matmul_right(&layer.attention.w0, Some(layer.attention.b0.row(0))));

    let x1 = always(layer_norm(&x.add(&z), &layer.ln1, net.layer_norm, input));

    let h = always(
        x1.matmul_right(&layer.ffn.w1, Some(layer.ffn.b1.row(0)))
            .relu(input),
    );
    let y = always(h.matmul_right(&layer.ffn.w2, Some(layer.ffn.b2.row(0))));
    always(layer_norm(&x1.add(&y), &layer.ln2, net.layer_norm, input))
}

fn transpose(b: &LinBounds) -> LinBounds {
    let (r, c) = b.shape();
    b.affine_map(c, r, &vec![0.0; r * c], |o| {
        let (j, i) = (o / r, o % r);
        vec![(i * c + j, 1.0)]
    })
}

fn layer_norm(x: &LinBounds, ln: &LayerNorm, kind: LayerNormKind, input: &CrownInput) -> LinBounds {
    let centred = x.subtract_row_mean();
    let normed = match kind {
        LayerNormKind::NoStd => centred,
        LayerNormKind::Std { epsilon } => {
            let e = x.shape().1;
            let sq = centred.mul_elementwise(&centred, input);
            let mean_w = Matrix::full(e, 1, 1.0 / e as f64);
            let var = sq.matmul_right(&mean_w, None);
            let var = var.add_row_bias(&[epsilon]);
            // 1/√(var), concretized: interval bounds of var (floored at ε —
            // the true variance is non-negative) through the monotone 1/√·.
            // Composing the sqrt and reciprocal relaxation lines instead
            // would inherit the spuriously negative abstract inputs of the
            // McCormick square.
            let (lv, uv) = var.bounds(input);
            let n = var.n_vars();
            let mut inv = var.collapse(input);
            for k in 0..n {
                let l = lv[k].max(epsilon);
                let u = uv[k].max(epsilon);
                inv.lb[k] = 1.0 / u.sqrt();
                inv.ub[k] = 1.0 / l.sqrt();
            }
            let ones = Matrix::full(1, e, 1.0);
            let inv_b = inv.matmul_right(&ones, None);
            centred.mul_elementwise(&inv_b, input)
        }
    };
    normed
        .mul_row_weights(ln.gamma.row(0))
        .add_row_bias(ln.beta.row(0))
}

/// Certifies `true_label` over the input region, forming each margin
/// `y_t − y_f` inside the linear domain before concretizing.
pub fn certify(
    net: &VerifiableTransformer,
    input: &CrownInput,
    true_label: usize,
    cfg: &CrownConfig,
) -> CertResult {
    certify_probed(net, input, true_label, cfg, &deept_telemetry::NoopProbe)
}

/// [`certify`] with telemetry; see [`propagate_probed`]. Under
/// [`CollapsePolicy::Best`] both sub-analyses report to the same probe.
pub fn certify_probed(
    net: &VerifiableTransformer,
    input: &CrownInput,
    true_label: usize,
    cfg: &CrownConfig,
    probe: &dyn deept_telemetry::Probe,
) -> CertResult {
    if cfg.collapse == CollapsePolicy::Best {
        let a = certify_probed(net, input, true_label, &CrownConfig::forward(), probe);
        let b = certify_probed(net, input, true_label, &CrownConfig::baf(), probe);
        let margins = a
            .margins
            .iter()
            .zip(&b.margins)
            .map(|(&x, &y)| x.max(y))
            .collect();
        return CertResult::from_margins(margins);
    }
    let (logits, basis) = propagate_probed(net, input, cfg, probe);
    let c = logits.shape().1;
    assert!(true_label < c, "true label out of range");
    let mut margins = vec![f64::INFINITY; c];
    for (f, mf) in margins.iter_mut().enumerate() {
        if f == true_label {
            continue;
        }
        // lower(y_t − y_f) = lb_t − ub_f − sup((uw_f − lw_t)·δ), in the
        // final symbol basis.
        let w = deept_tensor::vec_sub(logits.lw.row(true_label), logits.uw.row(f));
        let m = logits.lb[true_label] - logits.ub[f] - basis.sup(&w);
        *mf = if m.is_nan() { f64::NEG_INFINITY } else { m };
    }
    CertResult::from_margins(margins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_nn::transformer::{TransformerClassifier, TransformerConfig};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model(ln: LayerNormKind) -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 13,
                max_len: 6,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 12,
                num_layers: 2,
                num_classes: 2,
                layer_norm: ln,
            },
            &mut rng,
        )
    }

    fn check_sound(ln: LayerNormKind, p: PNorm, cfg: &CrownConfig, seed: u64) {
        let model = tiny_model(ln);
        let net = VerifiableTransformer::from(&model);
        let tokens = [1usize, 5, 9, 2];
        let emb = model.embed(&tokens);
        let input = CrownInput::t1(&emb, 1, 0.04, p);
        let (logits, basis) = propagate(&net, &input, cfg);
        let (lo, hi) = logits.bounds(&basis);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let e = emb.cols();
        for _ in 0..60 {
            // Sample a perturbation inside the ball.
            let mut delta: Vec<f64> = (0..e).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let n = p.norm(&delta);
            if n > 1.0 {
                for d in &mut delta {
                    *d /= n;
                }
            }
            let mut x = emb.clone();
            for (d, &dv) in delta.iter().enumerate() {
                *x.at_mut(1, d) += 0.04 * dv;
            }
            let out = model.classify(&model.encode(&x));
            for c in 0..2 {
                assert!(
                    out.at(0, c) >= lo[c] - 1e-7 && out.at(0, c) <= hi[c] + 1e-7,
                    "{ln:?}/{p:?}: logit {c} = {} outside [{}, {}]",
                    out.at(0, c),
                    lo[c],
                    hi[c]
                );
            }
        }
    }

    #[test]
    fn crown_backward_sound_all_norms() {
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            check_sound(LayerNormKind::NoStd, p, &CrownConfig::backward(), 1);
        }
    }

    #[test]
    fn crown_baf_and_interval_sound() {
        check_sound(LayerNormKind::NoStd, PNorm::L2, &CrownConfig::baf(), 2);
        check_sound(LayerNormKind::NoStd, PNorm::L2, &CrownConfig::interval(), 3);
    }

    #[test]
    fn crown_sound_std_layer_norm() {
        check_sound(
            LayerNormKind::Std { epsilon: 1e-5 },
            PNorm::L2,
            &CrownConfig::backward(),
            4,
        );
    }

    #[test]
    fn precision_ordering_backward_baf_interval() {
        // McCormick line selection is locally greedy, so strict per-query
        // dominance between Backward and the rebasing BaF is not a theorem;
        // we check the robust facts: both dominate pure interval
        // propagation, and averaged over queries Backward is at least as
        // tight as BaF.
        let model = tiny_model(LayerNormKind::NoStd);
        let net = VerifiableTransformer::from(&model);
        let pred_tokens: [[usize; 4]; 3] = [[1, 5, 9, 2], [3, 7, 0, 4], [8, 2, 6, 1]];
        let mut sum_b = 0.0;
        let mut sum_f = 0.0;
        for tokens in pred_tokens {
            let emb = model.embed(&tokens);
            let pred = model.predict(&tokens);
            let input = CrownInput::t1(&emb, 1, 0.02, PNorm::L2);
            let mb = certify(&net, &input, pred, &CrownConfig::backward()).margins[1 - pred];
            let mf = certify(&net, &input, pred, &CrownConfig::baf()).margins[1 - pred];
            let mi = certify(&net, &input, pred, &CrownConfig::interval()).margins[1 - pred];
            assert!(mb >= mi - 1e-9, "backward {mb} < interval {mi}");
            assert!(mf >= mi - 1e-9, "baf {mf} < interval {mi}");
            sum_b += mb;
            sum_f += mf;
        }
        assert!(
            sum_b >= sum_f - 1e-9,
            "backward below baf: {sum_b} vs {sum_f}"
        );
    }

    #[test]
    fn zero_radius_is_exact() {
        let model = tiny_model(LayerNormKind::NoStd);
        let net = VerifiableTransformer::from(&model);
        let tokens = [3usize, 4, 5];
        let emb = model.embed(&tokens);
        let input = CrownInput::t1(&emb, 0, 0.0, PNorm::L2);
        let (logits, basis) = propagate(&net, &input, &CrownConfig::backward());
        let (lo, hi) = logits.bounds(&basis);
        let exact = model.classify(&model.encode(&emb));
        for c in 0..2 {
            assert!(
                (lo[c] - exact.at(0, c)).abs() < 1e-6,
                "lo {} vs {}",
                lo[c],
                exact.at(0, c)
            );
            assert!((hi[c] - exact.at(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn mccormick_product_is_sound_elementwise() {
        // x ∈ [1±0.5] linear in δ, y ∈ [2±0.5]: xy bounds must contain all
        // products.
        let center = Matrix::from_rows(&[&[1.0, 2.0]]);
        let input = CrownInput::boxed(&center, &[(0, 0.5), (1, 0.5)]);
        let b = LinBounds::from_input(&input);
        let x = b.select_rows(&[0]); // both vars
        let y = x.mul_elementwise(&x, &input);
        let (lo, hi) = y.bounds(&input);
        // x² over [0.5, 1.5] ⊆ [lo0, hi0]
        assert!(lo[0] <= 0.25 + 1e-9 && hi[0] >= 2.25 - 1e-9);
        // Sound but not wildly loose.
        assert!(lo[0] >= -1.0 && hi[0] <= 4.0);
    }
}
