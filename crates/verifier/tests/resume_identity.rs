//! Warm-path identity pin for the cross-request state cache: resuming a
//! propagation from any cached layer-boundary snapshot yields **bitwise
//! identical** margins to the cold start — across every compute-kernel
//! mode (`DEEPT_KERNEL=naive|blocked|simd`), ε storage layout
//! (`DEEPT_EPS=dense|blocked`) and thread override (`DEEPT_THREADS=1|4`).
//! CI additionally runs this file under the real environment variables in
//! the warm-identity matrix job; the in-process mode sweep below keeps the
//! guarantee pinned in the default `cargo test` run too.

use deept_core::eps::set_force_dense;
use deept_core::{PNorm, Zonotope};
use deept_nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_tensor::parallel;
use deept_tensor::parallel::KernelMode;
use deept_verifier::deept::{
    certify, propagate_suffix_deadline_probed, propagate_with_snapshots, DeepTConfig,
    SoundnessProbe,
};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use deept_verifier::Deadline;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(ln: LayerNormKind) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 13,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: 2,
            num_classes: 2,
            layer_norm: ln,
        },
        &mut rng,
    )
}

struct CollectStates {
    states: Vec<Zonotope>,
}

impl SoundnessProbe for CollectStates {
    fn layer_output(&mut self, _i: usize, z: &Zonotope) {
        self.states.push(z.clone());
    }
}

/// Cold margins plus the margins of a resume from every layer boundary,
/// under the process-global mode currently in force.
fn cold_and_warm_margins(ln: LayerNormKind, p: PNorm) -> Vec<Vec<f64>> {
    let model = tiny_model(ln);
    let net = VerifiableTransformer::from(&model);
    let tokens = [1usize, 5, 9, 2];
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(60);
    let region = t1_region(&emb, 1, 0.03, p);
    let cold = certify(&net, &region, 0, &cfg);
    let mut snap = CollectStates { states: Vec::new() };
    let _ = propagate_with_snapshots(&net, &region, &cfg, &mut snap);
    let mut all = vec![cold.margins.clone()];
    for (k, state) in snap.states.iter().enumerate() {
        let logits = propagate_suffix_deadline_probed(
            &net,
            state,
            &cfg,
            k + 1,
            0,
            Deadline::none(),
            &deept_telemetry::NoopProbe,
        )
        .expect("Deadline::none() never expires");
        let warm =
            deept_verifier::network::margins_from_zonotope_deadline(&logits, 0, Deadline::none())
                .expect("no deadline");
        assert_eq!(cold.margins, warm, "warm resume from layer {k} diverged");
        all.push(warm);
    }
    all
}

#[test]
fn warm_resume_margins_bitwise_identical_across_modes() {
    let _guard = parallel::test_lock();
    let kernels = [KernelMode::Blocked, KernelMode::Simd];
    for ln in [LayerNormKind::NoStd, LayerNormKind::Std { epsilon: 1e-6 }] {
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            let mut reference: Option<Vec<Vec<f64>>> = None;
            for kernel in kernels {
                parallel::set_kernel_mode(Some(kernel));
                for threads in [1usize, 4] {
                    parallel::set_thread_override(Some(threads));
                    for dense in [true, false] {
                        set_force_dense(Some(dense));
                        let got = cold_and_warm_margins(ln, p);
                        match &reference {
                            None => reference = Some(got),
                            Some(want) => assert_eq!(
                                want, &got,
                                "diverged: ln={ln:?} p={p:?} kernel={kernel:?} \
                                 threads={threads} dense={dense}"
                            ),
                        }
                    }
                }
            }
        }
    }
    set_force_dense(None);
    parallel::set_kernel_mode(None);
    parallel::set_thread_override(None);
}
