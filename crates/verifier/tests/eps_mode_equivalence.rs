//! End-to-end pin of the blocked-ε guarantee at the verifier level: the
//! certification margins and the certified radius of a full transformer
//! propagation are **bitwise identical** between `DEEPT_EPS=dense` and the
//! default blocked layout — and across every compute-kernel mode
//! (`DEEPT_KERNEL=naive|blocked|simd`, the SIMD path promises bitwise
//! equality at `f64`) — for every p-norm, thread override and layer-norm
//! flavour.

use deept_core::eps::set_force_dense;
use deept_core::PNorm;
use deept_nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_tensor::parallel;
use deept_tensor::parallel::KernelMode;
use deept_verifier::deept::{certify, DeepTConfig};
use deept_verifier::network::t1_region;
use deept_verifier::radius::max_certified_radius;
use deept_verifier::VerifiableTransformer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(ln: LayerNormKind) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 13,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: 2,
            num_classes: 2,
            layer_norm: ln,
        },
        &mut rng,
    )
}

/// Margins and certified radius for one (layer-norm, p) configuration under
/// the process-global mode currently in force.
fn run_one(ln: LayerNormKind, p: PNorm) -> (Vec<f64>, f64) {
    let model = tiny_model(ln);
    let net = VerifiableTransformer::from(&model);
    let tokens = [1usize, 5, 9, 2];
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(60);
    let region = t1_region(&emb, 1, 0.03, p);
    let res = certify(&net, &region, 0, &cfg);
    let radius = max_certified_radius(
        |r| certify(&net, &t1_region(&emb, 1, r, p), 0, &cfg).certified,
        0.02,
        4,
    );
    (res.margins, radius)
}

#[test]
fn certified_radii_bitwise_identical_across_modes() {
    let _guard = parallel::test_lock();
    let configs = [LayerNormKind::NoStd, LayerNormKind::Std { epsilon: 1e-6 }];
    let norms = [PNorm::L1, PNorm::L2, PNorm::Linf];
    let kernels = [KernelMode::Naive, KernelMode::Blocked, KernelMode::Simd];
    for ln in configs {
        for p in norms {
            let mut reference: Option<(Vec<f64>, f64)> = None;
            for kernel in kernels {
                parallel::set_kernel_mode(Some(kernel));
                for threads in [1usize, 4] {
                    parallel::set_thread_override(Some(threads));
                    for dense in [true, false] {
                        set_force_dense(Some(dense));
                        let got = run_one(ln, p);
                        match &reference {
                            None => reference = Some(got),
                            Some(want) => assert_eq!(
                                want, &got,
                                "diverged: ln={ln:?} p={p:?} kernel={kernel:?} \
                                 threads={threads} dense={dense}"
                            ),
                        }
                    }
                }
            }
        }
    }
    set_force_dense(None);
    parallel::set_kernel_mode(None);
    parallel::set_thread_override(None);
}
