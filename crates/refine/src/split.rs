//! Noise-symbol domain splitting.
//!
//! A Multi-norm Zonotope's independent ε symbols each range over [−1, 1].
//! Branch-and-bound subdivides a region by restricting one symbol to a
//! half-interval and reparametrizing the half back onto a full [−1, 1]
//! symbol, so child regions are ordinary zonotopes and every downstream
//! transformer applies unchanged:
//!
//! ```text
//! ε_j ∈ [lo, hi]  ⇒  ε_j = mid + half·ε'_j,   mid = (lo+hi)/2, half = (hi−lo)/2
//! center_k += β_{k,j}·mid,   β_{k,j} *= half
//! ```
//!
//! The two halves `[−1, 0]` and `[0, 1]` cover the parent's domain, so if
//! both children certify, the parent region certifies. Only independent ε
//! symbols can be split this way — the joint φ symbols of an ℓ1/ℓ2 ball are
//! coupled through one norm constraint, which a per-coordinate affine
//! reparametrization would break.

use deept_core::Zonotope;

/// Which half of `[−1, 1]` a child restricts its split symbol to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Half {
    /// `ε_j ∈ [−1, 0]`.
    Lower,
    /// `ε_j ∈ [0, 1]`.
    Upper,
}

/// Restricts independent noise symbol `j` to one half of `[−1, 1]`,
/// reparametrized onto a fresh full-range symbol at the same column, so the
/// child has the identical symbol layout as the parent.
///
/// # Panics
///
/// Panics if `j` is not a valid ε column of `z`.
pub fn restrict_eps(z: &Zonotope, j: usize, half: Half) -> Zonotope {
    assert!(j < z.num_eps(), "split symbol {j} out of range");
    let (mid, scale) = match half {
        Half::Lower => (-0.5, 0.5),
        Half::Upper => (0.5, 0.5),
    };
    let mut center = z.center().to_vec();
    let mut eps = z.eps_dense_matrix();
    for (k, c) in center.iter_mut().enumerate() {
        let b = eps.at(k, j);
        *c += b * mid;
        eps.set(k, j, b * scale);
    }
    Zonotope::from_parts(z.rows(), z.cols(), center, z.phi().clone(), eps, z.p())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_core::PNorm;
    use deept_tensor::Matrix;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample_region() -> Zonotope {
        let center = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let radii = Matrix::from_rows(&[&[0.3, 0.1], &[0.2, 0.4]]);
        Zonotope::from_box(&center, &radii, PNorm::Linf)
    }

    #[test]
    fn halves_cover_the_parent_exactly() {
        // Every parent point ε_j = e maps to the child point
        // ε'_j = (e − mid)/half with identical concrete values.
        let z = sample_region();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for j in 0..z.num_eps() {
            let lower = restrict_eps(&z, j, Half::Lower);
            let upper = restrict_eps(&z, j, Half::Upper);
            for _ in 0..50 {
                let (phi, mut eps) = z.sample_noise(&mut rng);
                let parent = z.evaluate(&phi, &eps);
                let e = eps[j];
                let (child, mapped) = if e <= 0.0 {
                    (&lower, 2.0 * e + 1.0)
                } else {
                    (&upper, 2.0 * e - 1.0)
                };
                eps[j] = mapped;
                let got = child.evaluate(&phi, &eps);
                for (a, b) in parent.iter().zip(&got) {
                    assert!((a - b).abs() <= 1e-12, "parent {a} vs child {b}");
                }
            }
        }
    }

    #[test]
    fn children_stay_inside_the_parent() {
        let z = sample_region();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (lo, hi) = z.bounds();
        for j in 0..z.num_eps() {
            for half in [Half::Lower, Half::Upper] {
                let child = restrict_eps(&z, j, half);
                assert_eq!(child.num_eps(), z.num_eps());
                assert_eq!(child.num_phi(), z.num_phi());
                for _ in 0..30 {
                    let (phi, eps) = child.sample_noise(&mut rng);
                    let v = child.evaluate(&phi, &eps);
                    for (k, x) in v.iter().enumerate() {
                        assert!(
                            *x >= lo[k] - 1e-12 && *x <= hi[k] + 1e-12,
                            "child point {x} escapes parent [{}, {}]",
                            lo[k],
                            hi[k]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn split_shrinks_the_split_dimension() {
        let z = sample_region();
        let child = restrict_eps(&z, 0, Half::Lower);
        let (zl, zh) = z.bounds_of(0);
        let (cl, ch) = child.bounds_of(0);
        assert!(ch - cl < zh - zl, "split must tighten the touched variable");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_symbol_panics() {
        let z = sample_region();
        let _ = restrict_eps(&z, z.num_eps(), Half::Lower);
    }

    #[test]
    fn deterministic_across_calls() {
        let z = sample_region();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let j = rng.gen_range(0..z.num_eps());
        let a = restrict_eps(&z, j, Half::Upper);
        let b = restrict_eps(&z, j, Half::Upper);
        assert_eq!(a.center(), b.center());
        assert_eq!(a.bounds(), b.bounds());
    }
}
