//! Cached handles into the process-global (gated) metrics registry for the
//! refinement ladder.
//!
//! Same discipline as `deept-core`'s hot counters: these only feed the live
//! scrape endpoint, never the computation, and every bump is a single
//! relaxed atomic load when `DEEPT_METRICS=off`.

use deept_metrics::{Counter, Histogram};
use std::sync::OnceLock;

macro_rules! hot_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| deept_metrics::global().counter($metric, $help))
        }
    };
}

hot_counter!(
    escalations_total,
    "deept_refine_escalations_total",
    "Ladder escalations (Fast→Precise and Precise→Refine)."
);
hot_counter!(
    branches_total,
    "deept_refine_branches_total",
    "Branch-and-bound splits performed by the refinement stage."
);
hot_counter!(
    prunes_total,
    "deept_refine_prunes_total",
    "Refinement subtrees pruned by a concrete counterexample."
);
hot_counter!(
    nodes_total,
    "deept_refine_nodes_total",
    "Branch-and-bound nodes explored by the refinement stage."
);

macro_rules! level_histogram {
    ($fn_name:ident, $level:literal) => {
        pub(crate) fn $fn_name() -> &'static Histogram {
            static H: OnceLock<Histogram> = OnceLock::new();
            H.get_or_init(|| {
                deept_metrics::global().histogram_with(
                    "deept_refine_level_seconds",
                    &[("level", $level)],
                    "Wall-clock seconds spent per escalation-ladder level.",
                )
            })
        }
    };
}

level_histogram!(fast_seconds, "fast");
level_histogram!(precise_seconds, "precise");
level_histogram!(refine_seconds, "refine");
