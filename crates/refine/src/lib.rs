//! **deept-refine** — a deadline-aware CEGAR escalation ladder.
//!
//! DeepT's Fast and Precise verifiers answer most queries, but anything the
//! abstract domain cannot separate comes back "unknown". This crate turns
//! those answers into certified / falsified ones with a three-level ladder:
//!
//! 1. **Fast** — one DeepT-Fast propagation;
//! 2. **Precise** — one DeepT-Precise propagation (capturing the layer-0
//!    output snapshot for later resumption);
//! 3. **Refine** — randomized falsification ([`attack_t1`]) followed by
//!    best-first branch-and-bound over noise-symbol splits.
//!
//! The refinement stage maintains a priority queue of subproblems ordered
//! by margin lower bound (worst first). Each node carries a region zonotope
//! and the encoder layer it enters the network at:
//!
//! * **ℓ∞ queries** branch at the *input*: the perturbation ball is a
//!   diagonal ε box, so bisecting an ε symbol is exact input-ball bisection
//!   along one embedding coordinate, and a concrete misclassifying sample
//!   is a genuine adversarial example.
//! * **ℓ1/ℓ2 queries** carry their joint budget in φ symbols, which cannot
//!   be split per-coordinate (the norm constraint couples them). These
//!   branch on the ε symbols of the Precise pass's layer-0 *snapshot*
//!   (softmax/reciprocal/reduction noise), resuming propagation from layer
//!   1 via the verifier's suffix entry point — only layers downstream of
//!   the split are re-propagated.
//!
//! Split candidates are ranked by the margin gradient read directly off the
//! logits zonotope: node regions are propagated with their ε columns
//! *protected* from reduction, so region symbol `j`'s output coefficient
//! `β_t,j − β_f,j` (true vs. worst class) is exact — coefficient magnitude
//! already folds in the symbol's interval width.
//!
//! Concrete counterexamples prune branches early: a misclassifying sample
//! at an intermediate-layer node is possibly spurious (snapshots
//! over-approximate), but it survives *any* further split of that region,
//! so the subtree can never certify and is abandoned. At an input-level
//! node the same sample is a genuine [`RefineOutcome::Falsified`].
//!
//! On deadline expiry the ladder returns
//! [`RefineOutcome::Unknown`] with a *sound* partial bound: the minimum
//! over certified-leaf margins, pruned-leaf bounds and the inherited bounds
//! of still-open nodes (a child region is a subset of its parent, so the
//! parent's measured margin lower-bounds every descendant).
//!
//! Everything is deterministic for a fixed seed and node budget: margins
//! are bitwise reproducible across `DEEPT_THREADS` / `DEEPT_KERNEL` /
//! `DEEPT_EPS` (the PR 2/5/7 guarantees), sampling uses per-node seeded
//! ChaCha8 streams, and the queue breaks ties by node id — so the branch
//! tree itself is pinned by the equivalence tests.

#![deny(clippy::print_stdout)]

mod hot;
pub mod split;

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use deept_core::reduce::reduce_eps;
use deept_core::{PNorm, Zonotope};
use deept_nn::transformer::TransformerClassifier;
use deept_telemetry::{NoopProbe, Probe, SpanKind};
use deept_tensor::{ops, Matrix};
use deept_verifier::attack::attack_t1;
use deept_verifier::deept::{
    certify_deadline_probed, propagate_snapshots_deadline, propagate_suffix_deadline_probed,
    DeepTConfig, SoundnessProbe,
};
use deept_verifier::network::{margins_from_zonotope, t1_region};
use deept_verifier::{Deadline, DeadlineExceeded, VerifiableTransformer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use split::{restrict_eps, Half};

/// Tuning knobs of the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Reduction budget of the level-0 Fast pass.
    pub fast_budget: usize,
    /// Reduction budget of the level-1 Precise pass.
    pub precise_budget: usize,
    /// Reduction budget per branch-and-bound node (raised to the protected
    /// region-symbol count when smaller).
    pub refine_budget: usize,
    /// Maximum split depth of any branch.
    pub max_depth: usize,
    /// Maximum branch-and-bound nodes explored (the deterministic budget;
    /// the wall-clock [`Deadline`] can stop the search earlier).
    pub max_nodes: usize,
    /// Sample budget of the global [`attack_t1`] falsification attempt.
    pub attack_samples: usize,
    /// Concrete samples drawn per node for counterexample pruning.
    pub prune_samples: usize,
    /// Seed of every randomized component (attack + per-node sampling).
    pub seed: u64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            fast_budget: 2000,
            precise_budget: 500,
            refine_budget: 192,
            max_depth: 12,
            max_nodes: 128,
            attack_samples: 200,
            prune_samples: 12,
            seed: 0,
        }
    }
}

/// The ladder level that produced the final verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineLevel {
    /// DeepT-Fast alone decided.
    Fast,
    /// DeepT-Precise decided.
    Precise,
    /// The refinement stage (attack or branch-and-bound) decided.
    Refine,
}

impl RefineLevel {
    /// Lower-case wire/report name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RefineLevel::Fast => "fast",
            RefineLevel::Precise => "precise",
            RefineLevel::Refine => "refine",
        }
    }
}

/// Final verdict of one refined query.
#[derive(Debug, Clone, PartialEq)]
pub enum RefineOutcome {
    /// Every point of the input region classifies as the true label; the
    /// margin is a sound lower bound on `y_true − y_worst` over the region.
    Certified {
        /// Worst-class margin lower bound.
        margin: f64,
    },
    /// A concrete input-region embedding that misclassifies.
    Falsified {
        /// The adversarial embedding matrix (same shape as the input).
        adversarial_example: Matrix,
    },
    /// Neither proven nor falsified (deadline, depth or node budget); the
    /// bound is still a sound margin lower bound over the region.
    Unknown {
        /// Sound partial margin lower bound (may be `−∞`).
        lower_bound: f64,
    },
}

impl RefineOutcome {
    /// Lower-case wire/report name of the verdict.
    pub fn verdict(&self) -> &'static str {
        match self {
            RefineOutcome::Certified { .. } => "certified",
            RefineOutcome::Falsified { .. } => "falsified",
            RefineOutcome::Unknown { .. } => "unknown",
        }
    }
}

/// What the branch-and-bound loop did with one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAction {
    /// The node's region certified.
    Certified,
    /// The node was split on the given region symbol.
    Split {
        /// ε column that was bisected.
        symbol: usize,
    },
    /// A concrete counterexample at an intermediate layer made the subtree
    /// hopeless (possibly spurious, so not a falsification).
    Pruned,
    /// A genuine input-level adversarial example was found here.
    Falsified,
    /// Depth/candidate exhaustion: the node stays unknown.
    Stuck,
}

/// One explored node of the branch tree, in exploration order. The full
/// trace is the determinism fingerprint pinned by the equivalence tests.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// Exploration-order id (root = 0).
    pub id: usize,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Split depth.
    pub depth: usize,
    /// Encoder layer the node's region enters the network at.
    pub start_layer: usize,
    /// Sound margin lower bound measured at this node.
    pub margin: f64,
    /// What happened to the node.
    pub action: NodeAction,
}

/// Everything one ladder run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineReport {
    /// The verdict.
    pub outcome: RefineOutcome,
    /// Ladder level that decided.
    pub level: RefineLevel,
    /// Escalations taken (0 = Fast decided, 1 = Precise, 2 = Refine ran).
    pub escalations: usize,
    /// Branch-and-bound splits performed.
    pub branches: usize,
    /// Subtrees pruned by concrete counterexamples.
    pub pruned: usize,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Whether the wall-clock deadline cut the run short.
    pub timed_out: bool,
    /// Wall-clock seconds per level `[fast, precise, refine]`.
    pub level_seconds: [f64; 3],
    /// The branch tree, in exploration order.
    pub trace: Vec<NodeTrace>,
}

/// One open subproblem.
struct Node {
    id: usize,
    parent: Option<usize>,
    depth: usize,
    start_layer: usize,
    /// Sound margin lower bound inherited from the parent's evaluation.
    bound: f64,
    region: Zonotope,
}

/// Max-heap entry: the worst (most negative) bound pops first; ties break
/// toward the older node so exploration order is deterministic.
struct QueueEntry(Node);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound.to_bits() == other.0.bound.to_bits() && self.0.id == other.0.id
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .bound
            .total_cmp(&self.0.bound)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// Captures the abstract state after encoder layer 0 during the Precise
/// pass, so ℓ1/ℓ2 refinement can resume from layer 1.
#[derive(Default)]
struct Layer0Snapshot {
    z1: Option<Zonotope>,
}

impl SoundnessProbe for Layer0Snapshot {
    fn layer_output(&mut self, i: usize, z: &Zonotope) {
        if i == 0 {
            self.z1 = Some(z.clone());
        }
    }
}

/// Worst (minimum) margin over the non-true classes; `+∞` when there is no
/// competing class.
fn worst_margin(margins: &[f64]) -> f64 {
    margins.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Index of the worst competing class, if any.
fn worst_class(margins: &[f64], true_label: usize) -> Option<usize> {
    margins
        .iter()
        .enumerate()
        .filter(|&(f, _)| f != true_label)
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(f, _)| f)
}

/// Concrete forward pass from the boundary in front of encoder layer
/// `start_layer` to a predicted class.
fn classify_from(model: &TransformerClassifier, x: &Matrix, start_layer: usize) -> usize {
    let mut x = x.clone();
    for layer in &model.layers[start_layer..] {
        x = layer.forward(&x, model.config.layer_norm, model.config.head_dim());
    }
    ops::argmax(model.classify(&x).row(0))
}

/// Draws deterministic samples from `region` and returns the first
/// misclassifying concrete state, if any. Half the samples are extreme
/// (noise at ±1), half interior.
fn find_counterexample(
    model: &TransformerClassifier,
    region: &Zonotope,
    start_layer: usize,
    true_label: usize,
    samples: usize,
    rng: &mut ChaCha8Rng,
) -> Option<Matrix> {
    for s in 0..samples {
        let (phi, eps) = if s % 2 == 0 {
            region.sample_extreme_noise(rng)
        } else {
            region.sample_noise(rng)
        };
        let flat = region.evaluate(&phi, &eps);
        let x = Matrix::from_vec(region.rows(), region.cols(), flat)
            .expect("region evaluation yields rows*cols values");
        if classify_from(model, &x, start_layer) != true_label {
            return Some(x);
        }
    }
    None
}

/// Picks the split symbol with the largest margin gradient
/// `|β_t,j − β_f,j|` over the protected region columns `0..protect`; ties
/// break toward the lowest column. Returns `None` when every protected
/// coefficient is zero or non-finite (nothing to gain from splitting).
fn best_split_symbol(
    logits: &Zonotope,
    true_label: usize,
    worst: usize,
    protect: usize,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for j in 0..protect.min(logits.num_eps()) {
        let g = (logits.eps_at(true_label, j) - logits.eps_at(worst, j)).abs();
        if !g.is_finite() || g == 0.0 {
            continue;
        }
        match best {
            Some((_, bg)) if g <= bg => {}
            _ => best = Some((j, g)),
        }
    }
    best.map(|(j, _)| j)
}

/// Runs the full escalation ladder on one T1 query; see the crate docs.
///
/// `true_label` is the class to certify — the ladder requires it to match
/// the model's clean prediction (otherwise the unperturbed embedding is
/// already a counterexample, returned as [`RefineOutcome::Falsified`]).
#[allow(clippy::too_many_arguments)]
pub fn refine_certify(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    true_label: usize,
    cfg: &RefineConfig,
    deadline: Deadline,
) -> RefineReport {
    refine_certify_probed(
        model, tokens, position, radius, p, true_label, cfg, deadline, &NoopProbe,
    )
}

/// [`refine_certify`] with telemetry: the ladder reports one
/// [`SpanKind::RefineNode`] span per branch-and-bound node, in exploration
/// order, carrying the node's logits precision stats.
#[allow(clippy::too_many_arguments)]
pub fn refine_certify_probed(
    model: &TransformerClassifier,
    tokens: &[usize],
    position: usize,
    radius: f64,
    p: PNorm,
    true_label: usize,
    cfg: &RefineConfig,
    deadline: Deadline,
    probe: &dyn Probe,
) -> RefineReport {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let region = t1_region(&emb, position, radius, p);

    let mut report = RefineReport {
        outcome: RefineOutcome::Unknown {
            lower_bound: f64::NEG_INFINITY,
        },
        level: RefineLevel::Fast,
        escalations: 0,
        branches: 0,
        pruned: 0,
        nodes_explored: 0,
        timed_out: false,
        level_seconds: [0.0; 3],
        trace: Vec::new(),
    };

    // The center of the ball must already classify correctly; otherwise the
    // unperturbed embedding falsifies the query outright.
    if classify_from(model, &emb, 0) != true_label {
        report.outcome = RefineOutcome::Falsified {
            adversarial_example: emb,
        };
        return report;
    }

    // Level 0: Fast.
    let t0 = Instant::now();
    let fast = certify_deadline_probed(
        &net,
        &region,
        true_label,
        &DeepTConfig::fast(cfg.fast_budget),
        deadline,
        probe,
    );
    report.level_seconds[0] = t0.elapsed().as_secs_f64();
    hot::fast_seconds().observe(report.level_seconds[0]);
    let mut best_bound = f64::NEG_INFINITY;
    match fast {
        Err(DeadlineExceeded) => {
            report.timed_out = true;
            return report;
        }
        Ok(res) => {
            let m = worst_margin(&res.margins);
            best_bound = best_bound.max(m);
            if res.certified {
                report.outcome = RefineOutcome::Certified { margin: m };
                return report;
            }
        }
    }

    // Level 1: Precise, snapshotting the layer-0 output for resumption.
    report.escalations = 1;
    hot::escalations_total().inc();
    report.level = RefineLevel::Precise;
    let t1 = Instant::now();
    let pcfg = DeepTConfig::precise(cfg.precise_budget);
    let mut snap = Layer0Snapshot::default();
    let precise = propagate_snapshots_deadline(&net, &region, &pcfg, deadline, &mut snap);
    report.level_seconds[1] = t1.elapsed().as_secs_f64();
    hot::precise_seconds().observe(report.level_seconds[1]);
    match precise {
        Err(DeadlineExceeded) => {
            report.timed_out = true;
            report.outcome = RefineOutcome::Unknown {
                lower_bound: best_bound,
            };
            return report;
        }
        Ok(logits) => {
            let margins = margins_from_zonotope(&logits, true_label);
            let m = worst_margin(&margins);
            best_bound = best_bound.max(m);
            if m > 0.0 {
                report.outcome = RefineOutcome::Certified { margin: m };
                return report;
            }
        }
    }

    // Level 2: refinement. First a global falsification attempt …
    report.escalations = 2;
    hot::escalations_total().inc();
    report.level = RefineLevel::Refine;
    let t2 = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    if let Some(adv) = attack_t1(
        model,
        tokens,
        position,
        radius,
        p,
        cfg.attack_samples,
        &mut rng,
    ) {
        report.level_seconds[2] = t2.elapsed().as_secs_f64();
        hot::refine_seconds().observe(report.level_seconds[2]);
        report.outcome = RefineOutcome::Falsified {
            adversarial_example: adv,
        };
        return report;
    }

    // … then best-first branch-and-bound over noise-symbol splits.
    let (root_region, start_layer) = match p {
        // ℓ∞: the input ball is a diagonal ε box — branch at the input.
        PNorm::Linf => (region, 0usize),
        // ℓ1/ℓ2: branch on the layer-0 snapshot's ε symbols, compacted to
        // the node budget first so `protect` stays affordable.
        _ => match snap.z1 {
            Some(z1) => (reduce_eps(&z1, cfg.refine_budget.max(1), 0).0, 1usize),
            // No encoder layers: nothing to resume from, nothing to split.
            None => {
                report.level_seconds[2] = t2.elapsed().as_secs_f64();
                hot::refine_seconds().observe(report.level_seconds[2]);
                report.outcome = RefineOutcome::Unknown {
                    lower_bound: best_bound,
                };
                return report;
            }
        },
    };

    let rcfg = DeepTConfig::precise(cfg.refine_budget);
    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry(Node {
        id: 0,
        parent: None,
        depth: 0,
        start_layer,
        bound: best_bound,
        region: root_region,
    }));
    let mut next_id = 1usize;
    let mut certified_min = f64::INFINITY;
    let mut stuck_bound = f64::INFINITY;
    let mut any_stuck = false;
    let mut falsified: Option<Matrix> = None;

    while let Some(QueueEntry(node)) = heap.pop() {
        if deadline.expired() {
            report.timed_out = true;
            heap.push(QueueEntry(node));
            break;
        }
        if report.nodes_explored >= cfg.max_nodes {
            heap.push(QueueEntry(node));
            break;
        }
        report.nodes_explored += 1;
        hot::nodes_total().inc();

        // Protect the node's region symbols through every reduction so the
        // logits expose exact per-symbol margin gradients.
        let protect = node.region.num_eps();
        probe.span_enter(SpanKind::RefineNode(node.id));
        let propagated = propagate_suffix_deadline_probed(
            &net,
            &node.region,
            &rcfg,
            node.start_layer,
            protect,
            deadline,
            probe,
        );
        let stats = match &propagated {
            Ok(z) => probe.enabled().then(|| z.telemetry_stats()),
            Err(_) => None,
        };
        probe.span_exit(SpanKind::RefineNode(node.id), stats, 0);
        let logits = match propagated {
            Ok(l) => l,
            Err(DeadlineExceeded) => {
                report.timed_out = true;
                heap.push(QueueEntry(node));
                break;
            }
        };
        let margins = margins_from_zonotope(&logits, true_label);
        // The parent's bound holds for every subregion, so the node's sound
        // bound is the better of the two.
        let margin = worst_margin(&margins).max(node.bound);

        if margin > 0.0 {
            certified_min = certified_min.min(margin);
            report.trace.push(NodeTrace {
                id: node.id,
                parent: node.parent,
                depth: node.depth,
                start_layer: node.start_layer,
                margin,
                action: NodeAction::Certified,
            });
            continue;
        }

        // Concrete counterexample search: genuine at the input boundary,
        // subtree-pruning everywhere else.
        let mut nrng = ChaCha8Rng::seed_from_u64(
            cfg.seed ^ (node.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if let Some(x) = find_counterexample(
            model,
            &node.region,
            node.start_layer,
            true_label,
            cfg.prune_samples,
            &mut nrng,
        ) {
            if node.start_layer == 0 {
                report.trace.push(NodeTrace {
                    id: node.id,
                    parent: node.parent,
                    depth: node.depth,
                    start_layer: node.start_layer,
                    margin,
                    action: NodeAction::Falsified,
                });
                falsified = Some(x);
                break;
            }
            // Spurious or not, the sample survives any further split of
            // this region — the subtree can never certify.
            report.pruned += 1;
            hot::prunes_total().inc();
            any_stuck = true;
            stuck_bound = stuck_bound.min(margin);
            report.trace.push(NodeTrace {
                id: node.id,
                parent: node.parent,
                depth: node.depth,
                start_layer: node.start_layer,
                margin,
                action: NodeAction::Pruned,
            });
            continue;
        }

        let symbol = if node.depth >= cfg.max_depth || !margin.is_finite() {
            None
        } else {
            worst_class(&margins, true_label)
                .and_then(|w| best_split_symbol(&logits, true_label, w, protect))
        };
        let Some(symbol) = symbol else {
            any_stuck = true;
            stuck_bound = stuck_bound.min(margin);
            report.trace.push(NodeTrace {
                id: node.id,
                parent: node.parent,
                depth: node.depth,
                start_layer: node.start_layer,
                margin,
                action: NodeAction::Stuck,
            });
            continue;
        };

        report.branches += 1;
        hot::branches_total().inc();
        report.trace.push(NodeTrace {
            id: node.id,
            parent: node.parent,
            depth: node.depth,
            start_layer: node.start_layer,
            margin,
            action: NodeAction::Split { symbol },
        });
        for half in [Half::Lower, Half::Upper] {
            heap.push(QueueEntry(Node {
                id: next_id,
                parent: Some(node.id),
                depth: node.depth + 1,
                start_layer: node.start_layer,
                bound: margin,
                region: restrict_eps(&node.region, symbol, half),
            }));
            next_id += 1;
        }
    }

    report.level_seconds[2] = t2.elapsed().as_secs_f64();
    hot::refine_seconds().observe(report.level_seconds[2]);

    if let Some(adv) = falsified {
        report.outcome = RefineOutcome::Falsified {
            adversarial_example: adv,
        };
        return report;
    }
    let open_bound = heap.iter().map(|e| e.0.bound).fold(f64::INFINITY, f64::min);
    if heap.is_empty() && !any_stuck {
        // Every leaf certified; the region's margin is the worst leaf's.
        report.outcome = RefineOutcome::Certified {
            margin: certified_min,
        };
    } else {
        // Margin over the union region = min over its parts; every node's
        // bound already folds in its ancestors' (and the flat passes')
        // sound bounds, so this is ≥ what Fast/Precise alone established.
        report.outcome = RefineOutcome::Unknown {
            lower_bound: certified_min.min(stuck_bound).min(open_bound),
        };
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_nn::transformer::{LayerNormKind, TransformerConfig};

    fn tiny_model(ln: LayerNormKind, layers: usize, seed: u64) -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 13,
                max_len: 6,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 12,
                num_layers: layers,
                num_classes: 2,
                layer_norm: ln,
            },
            &mut rng,
        )
    }

    #[test]
    fn tiny_radius_certifies_at_fast_level() {
        let model = tiny_model(LayerNormKind::NoStd, 1, 42);
        let tokens = [3usize, 4, 5];
        let label = model.predict(&tokens);
        let report = refine_certify(
            &model,
            &tokens,
            0,
            1e-5,
            PNorm::Linf,
            label,
            &RefineConfig::default(),
            Deadline::none(),
        );
        assert!(matches!(report.outcome, RefineOutcome::Certified { .. }));
        assert_eq!(report.level, RefineLevel::Fast);
        assert_eq!(report.escalations, 0);
    }

    #[test]
    fn wrong_label_is_falsified_by_the_clean_input() {
        let model = tiny_model(LayerNormKind::NoStd, 1, 42);
        let tokens = [3usize, 4, 5];
        let label = model.predict(&tokens);
        let report = refine_certify(
            &model,
            &tokens,
            0,
            0.01,
            PNorm::Linf,
            1 - label,
            &RefineConfig::default(),
            Deadline::none(),
        );
        assert!(matches!(report.outcome, RefineOutcome::Falsified { .. }));
    }

    #[test]
    fn huge_radius_is_falsified() {
        let model = tiny_model(LayerNormKind::NoStd, 1, 42);
        let tokens = [3usize, 4, 5];
        let label = model.predict(&tokens);
        let report = refine_certify(
            &model,
            &tokens,
            1,
            5.0,
            PNorm::Linf,
            label,
            &RefineConfig::default(),
            Deadline::none(),
        );
        match &report.outcome {
            RefineOutcome::Falsified {
                adversarial_example,
            } => {
                // The counterexample really misclassifies.
                let got = classify_from(&model, adversarial_example, 0);
                assert_ne!(got, label, "adversarial example must misclassify");
            }
            other => panic!("expected falsification at radius 5.0, got {other:?}"),
        }
    }

    #[test]
    fn refinement_certifies_queries_the_flat_passes_lose() {
        // Starve the flat passes (tiny budgets) so the ladder has to branch,
        // and give refinement room to win.
        let model = tiny_model(LayerNormKind::NoStd, 2, 42);
        let tokens = [1usize, 5, 9, 2];
        let label = model.predict(&tokens);
        let cfg = RefineConfig {
            fast_budget: 1,
            precise_budget: 1,
            refine_budget: 400,
            max_nodes: 64,
            ..RefineConfig::default()
        };
        let report = refine_certify(
            &model,
            &tokens,
            1,
            0.075,
            PNorm::Linf,
            label,
            &cfg,
            Deadline::none(),
        );
        assert_eq!(report.escalations, 2, "flat passes must fail first");
        assert!(
            matches!(report.outcome, RefineOutcome::Certified { .. }),
            "refinement should close this query: {:?}",
            report.outcome
        );
        assert!(report.branches > 0, "must actually branch");
    }

    #[test]
    fn l2_queries_refine_from_the_layer_snapshot() {
        let model = tiny_model(LayerNormKind::NoStd, 2, 42);
        let tokens = [1usize, 5, 9, 2];
        let label = model.predict(&tokens);
        let cfg = RefineConfig {
            fast_budget: 4,
            precise_budget: 200,
            refine_budget: 300,
            max_nodes: 32,
            ..RefineConfig::default()
        };
        let report = refine_certify(
            &model,
            &tokens,
            1,
            0.01,
            PNorm::L2,
            label,
            &cfg,
            Deadline::none(),
        );
        if report.escalations == 2 {
            // All refinement nodes must resume from layer 1 (symbol-level
            // splits), never pretend to be input-level.
            assert!(report.trace.iter().all(|t| t.start_layer == 1));
            assert!(
                !matches!(report.outcome, RefineOutcome::Falsified { .. })
                    || report
                        .trace
                        .iter()
                        .all(|t| t.action != NodeAction::Falsified),
                "intermediate nodes must never produce genuine falsifications"
            );
        }
    }

    #[test]
    fn expired_deadline_returns_sound_partial_bound() {
        let model = tiny_model(LayerNormKind::NoStd, 2, 42);
        let tokens = [1usize, 5, 9, 2];
        let label = model.predict(&tokens);
        let report = refine_certify(
            &model,
            &tokens,
            1,
            0.02,
            PNorm::Linf,
            label,
            &RefineConfig::default(),
            Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        );
        assert!(report.timed_out);
        assert!(matches!(report.outcome, RefineOutcome::Unknown { .. }));
    }

    #[test]
    fn unknown_bound_is_sound_under_node_starvation() {
        // One-node budget: the ladder explores the root, then stops with
        // the open children still queued; the reported bound must not
        // exceed what Fast/Precise alone established (both are sound).
        let model = tiny_model(LayerNormKind::NoStd, 2, 42);
        let tokens = [1usize, 5, 9, 2];
        let label = model.predict(&tokens);
        let cfg = RefineConfig {
            fast_budget: 4,
            precise_budget: 4,
            max_nodes: 1,
            ..RefineConfig::default()
        };
        let report = refine_certify(
            &model,
            &tokens,
            1,
            0.02,
            PNorm::Linf,
            label,
            &cfg,
            Deadline::none(),
        );
        if let RefineOutcome::Unknown { lower_bound } = report.outcome {
            // Concretely sample the region: every concrete margin must sit
            // above the reported lower bound.
            let emb = model.embed(&tokens);
            let region = t1_region(&emb, 1, 0.02, PNorm::Linf);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..50 {
                let (phi, eps) = region.sample_noise(&mut rng);
                let x = Matrix::from_vec(region.rows(), region.cols(), region.evaluate(&phi, &eps))
                    .expect("shape");
                let logits = model.classify(&model.encode(&x));
                let concrete = logits.at(0, label) - logits.at(0, 1 - label);
                assert!(
                    concrete >= lower_bound - 1e-9,
                    "concrete margin {concrete} below reported bound {lower_bound}"
                );
            }
        }
    }

    #[test]
    fn report_is_deterministic_for_fixed_seed() {
        let model = tiny_model(LayerNormKind::NoStd, 2, 42);
        let tokens = [1usize, 5, 9, 2];
        let label = model.predict(&tokens);
        let cfg = RefineConfig {
            fast_budget: 4,
            precise_budget: 4,
            max_nodes: 16,
            ..RefineConfig::default()
        };
        let run = || {
            refine_certify(
                &model,
                &tokens,
                1,
                0.02,
                PNorm::Linf,
                label,
                &cfg,
                Deadline::none(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.branches, b.branches);
    }
}
