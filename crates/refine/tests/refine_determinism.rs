//! Escalation-determinism pin (the `eps_mode_equivalence` guarantee lifted
//! to the refinement ladder): for a fixed seed and node budget, the branch
//! tree — every node id, parent, split symbol and margin, in exploration
//! order — and the final verdict must be identical across
//! `DEEPT_THREADS ∈ {1, 4}` and `DEEPT_KERNEL ∈ {blocked, simd}` (and the
//! dense-ε escape hatch). Margins are bitwise reproducible by the PR 2/5/7
//! kernel guarantees, sampling is ChaCha8-seeded per node, and the queue
//! breaks ties by node id, so any divergence here is a regression.

use deept_core::eps::set_force_dense;
use deept_core::PNorm;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_refine::{refine_certify, RefineConfig, RefineReport};
use deept_tensor::parallel;
use deept_tensor::parallel::KernelMode;
use deept_verifier::Deadline;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(ln: LayerNormKind) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 13,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: 2,
            num_classes: 2,
            layer_norm: ln,
        },
        &mut rng,
    )
}

/// One full ladder run that is forced into the branch-and-bound stage
/// (starved flat passes) under the process-global mode currently in force.
/// No wall-clock deadline: the deterministic `max_nodes` budget bounds the
/// search, so the branch tree is a pure function of the inputs.
fn run_one(ln: LayerNormKind, p: PNorm, radius: f64) -> RefineReport {
    let model = tiny_model(ln);
    let tokens = [1usize, 5, 9, 2];
    let label = model.predict(&tokens);
    let cfg = RefineConfig {
        fast_budget: 1,
        precise_budget: 1,
        refine_budget: 400,
        max_nodes: 24,
        seed: 7,
        ..RefineConfig::default()
    };
    refine_certify(&model, &tokens, 1, radius, p, label, &cfg, Deadline::none())
}

#[test]
fn branch_tree_and_verdict_identical_across_modes() {
    let _guard = parallel::test_lock();
    let cases = [
        (LayerNormKind::NoStd, PNorm::Linf, 0.075),
        (LayerNormKind::NoStd, PNorm::L2, 0.35),
        (LayerNormKind::Std { epsilon: 1e-6 }, PNorm::Linf, 0.05),
    ];
    for (ln, p, radius) in cases {
        let mut reference: Option<RefineReport> = None;
        for kernel in [KernelMode::Blocked, KernelMode::Simd] {
            parallel::set_kernel_mode(Some(kernel));
            for threads in [1usize, 4] {
                parallel::set_thread_override(Some(threads));
                for dense in [true, false] {
                    set_force_dense(Some(dense));
                    let got = run_one(ln, p, radius);
                    match &reference {
                        None => reference = Some(got),
                        Some(want) => {
                            assert_eq!(
                                want.trace, got.trace,
                                "branch tree diverged: ln={ln:?} p={p:?} \
                                 kernel={kernel:?} threads={threads} dense={dense}"
                            );
                            assert_eq!(
                                want.outcome, got.outcome,
                                "verdict diverged: ln={ln:?} p={p:?} \
                                 kernel={kernel:?} threads={threads} dense={dense}"
                            );
                            assert_eq!(
                                (want.escalations, want.branches, want.pruned),
                                (got.escalations, got.branches, got.pruned),
                                "counters diverged: ln={ln:?} p={p:?} \
                                 kernel={kernel:?} threads={threads} dense={dense}"
                            );
                        }
                    }
                }
            }
        }
        let r = reference.expect("at least one mode ran");
        assert_eq!(
            r.escalations, 2,
            "{ln:?}/{p:?}: the case must reach the refinement stage"
        );
    }
    set_force_dense(None);
    parallel::set_kernel_mode(None);
    parallel::set_thread_override(None);
}
