//! Micro-benchmark: dual-norm concretization of Multi-norm Zonotope bounds
//! (Theorem 1), the innermost hot loop of every element-wise transformer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::{PNorm, Zonotope};
use deept_tensor::Matrix;

fn zono(vars: usize, syms: usize, p: PNorm) -> Zonotope {
    let center = vec![0.1; vars];
    let phi = Matrix::from_fn(vars, 16, |r, c| {
        ((r * 31 + c * 7) % 13) as f64 * 0.01 - 0.06
    });
    let eps = Matrix::from_fn(vars, syms, |r, c| {
        ((r * 17 + c * 3) % 11) as f64 * 0.01 - 0.05
    });
    Zonotope::from_parts(vars, 1, center, phi, eps, p)
}

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bounds");
    g.sample_size(20);
    for &syms in &[256usize, 1024, 4096] {
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            let z = zono(128, syms, p);
            g.bench_with_input(BenchmarkId::new(format!("{p}"), syms), &z, |b, z| {
                b.iter(|| black_box(z.bounds()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
