//! Ablation bench: DecorrelateMin_k (scored, §5.1) vs unscored box-all
//! reduction — measures both the cost and, via a margin probe printed by
//! the companion test suite, justifies the scored heuristic.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::reduce::{reduce_box_all, reduce_eps};
use deept_core::{PNorm, Zonotope};
use deept_tensor::Matrix;

fn zono(vars: usize, syms: usize) -> Zonotope {
    let eps = Matrix::from_fn(vars, syms, |r, c| ((r * 13 + c * 7) % 17) as f64 * 0.003);
    Zonotope::from_parts(
        vars,
        1,
        vec![0.0; vars],
        Matrix::zeros(vars, 8),
        eps,
        PNorm::L2,
    )
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_ablation");
    g.sample_size(10);
    for &syms in &[2048usize, 8192] {
        let z = zono(96, syms);
        g.bench_with_input(BenchmarkId::new("decorrelate_min_k", syms), &z, |b, z| {
            b.iter(|| black_box(reduce_eps(z, syms / 4, 0)))
        });
        g.bench_with_input(BenchmarkId::new("box_all", syms), &z, |b, z| {
            b.iter(|| black_box(reduce_box_all(z, 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
