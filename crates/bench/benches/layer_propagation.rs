//! Micro-benchmark: per-layer DeepT-Fast propagation cost as depth grows.
//! The paper claims DeepT-Fast scales *linearly* with depth thanks to the
//! noise-symbol budget; total time across the depth axis here should grow
//! ~proportionally.
//!
//! Each depth is measured twice: on the blocked/parallel kernels (default,
//! `fast/<depth>`) and on the naive reference path (`naive/<depth>`, routed
//! in-process via [`set_force_naive`]). `scripts/bench_smoke.sh` reads both
//! medians and reports the speedup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::PNorm;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_tensor::parallel::set_force_naive;
use deept_verifier::deept::{propagate, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use rand::SeedableRng;

fn model(layers: usize) -> TransformerClassifier {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 20,
            max_len: 8,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

fn bench_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("layer_propagation");
    g.sample_size(10);
    for &m in &[1usize, 2, 4] {
        let model = model(m);
        let net = VerifiableTransformer::from(&model);
        let emb = model.embed(&[1, 2, 3, 4, 5, 6]);
        let region = t1_region(&emb, 2, 0.01, PNorm::L2);
        let cfg = DeepTConfig::fast(1000);
        for (name, naive) in [("fast", false), ("naive", true)] {
            g.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                set_force_naive(naive);
                b.iter(|| black_box(propagate(&net, &region, &cfg)));
                set_force_naive(false);
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_depth);
criterion_main!(benches);
