//! Micro-benchmark: per-layer DeepT-Fast propagation cost as depth grows.
//! The paper claims DeepT-Fast scales *linearly* with depth thanks to the
//! noise-symbol budget; total time across the depth axis here should grow
//! ~proportionally.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::PNorm;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_verifier::deept::{propagate, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use rand::SeedableRng;

fn model(layers: usize) -> TransformerClassifier {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 20,
            max_len: 8,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

fn bench_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("layer_propagation");
    g.sample_size(10);
    for &m in &[1usize, 2, 4] {
        let model = model(m);
        let net = VerifiableTransformer::from(&model);
        let emb = model.embed(&[1, 2, 3, 4, 5, 6]);
        let region = t1_region(&emb, 2, 0.01, PNorm::L2);
        let cfg = DeepTConfig::fast(1000);
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(propagate(&net, &region, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_depth);
criterion_main!(benches);
