//! Micro-benchmark: DecorrelateMin_k noise-symbol reduction (§5.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::{PNorm, Zonotope};
use deept_tensor::Matrix;

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise_reduction");
    g.sample_size(10);
    for &syms in &[1024usize, 4096, 8192] {
        let vars = 128;
        let eps = Matrix::from_fn(vars, syms, |r, c| ((r * 13 + c * 7) % 17) as f64 * 0.003);
        let z = Zonotope::from_parts(
            vars,
            1,
            vec![0.0; vars],
            Matrix::zeros(vars, 8),
            eps,
            PNorm::L2,
        );
        g.bench_with_input(BenchmarkId::from_parameter(syms), &z, |b, z| {
            b.iter(|| black_box(z.reduced(syms / 4, 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduce);
criterion_main!(benches);
