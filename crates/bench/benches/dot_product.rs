//! Micro-benchmark: the dot-product abstract transformer (§4.8), Fast vs
//! Precise, across noise-symbol counts. The paper's complexity claims are
//! O(N(E_p + E_∞)) for Fast and O(N·E_∞²) for Precise; the scaling across
//! the symbol axis here exhibits exactly that gap.
//!
//! Each variant is measured twice: on the blocked/parallel kernels (default)
//! and on the naive reference path (`*_naive`, routed in-process via
//! [`set_force_naive`]). `scripts/bench_smoke.sh` reads both medians and
//! reports the speedup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::dot::{zono_matmul, DotConfig};
use deept_core::{PNorm, Zonotope};
use deept_tensor::parallel::set_force_naive;
use deept_tensor::Matrix;

fn operand(rows: usize, cols: usize, syms: usize, seed: usize) -> Zonotope {
    let n = rows * cols;
    let center = (0..n).map(|i| ((i * 7 + seed) % 9) as f64 * 0.1).collect();
    let phi = Matrix::from_fn(n, 8, |r, c| ((r + c * 3 + seed) % 7) as f64 * 0.01);
    let eps = Matrix::from_fn(n, syms, |r, c| ((r * 5 + c + seed) % 11) as f64 * 0.005);
    Zonotope::from_parts(rows, cols, center, phi, eps, PNorm::L2)
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot_product");
    g.sample_size(10);
    for &syms in &[64usize, 128, 256] {
        let a = operand(6, 8, syms, 1);
        let b = operand(8, 6, syms, 2);
        for (name, naive) in [("fast", false), ("fast_naive", true)] {
            g.bench_with_input(BenchmarkId::new(name, syms), &syms, |bch, _| {
                set_force_naive(naive);
                bch.iter(|| black_box(zono_matmul(&a, &b, DotConfig::fast())));
                set_force_naive(false);
            });
        }
        for (name, naive) in [("precise", false), ("precise_naive", true)] {
            g.bench_with_input(BenchmarkId::new(name, syms), &syms, |bch, _| {
                set_force_naive(naive);
                bch.iter(|| black_box(zono_matmul(&a, &b, DotConfig::precise())));
                set_force_naive(false);
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dot);
criterion_main!(benches);
