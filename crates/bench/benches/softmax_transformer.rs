//! Micro-benchmark: the softmax abstract transformer (§5.2) with and without
//! the sum-constraint refinement (§5.3), across row widths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use deept_core::softmax::{softmax_rows, SoftmaxConfig};
use deept_core::{PNorm, Zonotope};
use deept_tensor::Matrix;

fn scores(n: usize, syms: usize) -> Zonotope {
    let vars = n * n;
    let center = (0..vars).map(|i| ((i % 7) as f64 - 3.0) * 0.2).collect();
    let phi = Matrix::from_fn(vars, 8, |r, c| ((r + c) % 5) as f64 * 0.01);
    let eps = Matrix::from_fn(vars, syms, |r, c| ((r * 3 + c) % 9) as f64 * 0.004);
    Zonotope::from_parts(n, n, center, phi, eps, PNorm::L2)
}

fn bench_softmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax");
    g.sample_size(10);
    for &n in &[4usize, 8, 12] {
        let z = scores(n, 256);
        g.bench_with_input(BenchmarkId::new("refined", n), &z, |b, z| {
            b.iter(|| black_box(softmax_rows(z, SoftmaxConfig::default())))
        });
        g.bench_with_input(BenchmarkId::new("plain", n), &z, |b, z| {
            b.iter(|| black_box(softmax_rows(z, SoftmaxConfig::without_refinement())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_softmax);
criterion_main!(benches);
