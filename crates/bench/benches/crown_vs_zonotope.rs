//! Micro-benchmark: one full certification query per verifier family —
//! the cost side of the precision/performance trade-off (§6.3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deept_core::PNorm;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_verifier::crown::{self, CrownConfig, CrownInput};
use deept_verifier::deept::{self, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use rand::SeedableRng;

fn bench_verifiers(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 20,
            max_len: 8,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    let net = VerifiableTransformer::from(&model);
    let tokens = [1usize, 2, 3, 4, 5, 6];
    let emb = model.embed(&tokens);
    let label = model.predict(&tokens);

    let mut g = c.benchmark_group("certify_query");
    g.sample_size(10);
    g.bench_function("deept_fast", |b| {
        let cfg = DeepTConfig::fast(1000);
        b.iter(|| {
            let region = t1_region(&emb, 2, 0.01, PNorm::L2);
            black_box(deept::certify(&net, &region, label, &cfg))
        })
    });
    g.bench_function("deept_precise", |b| {
        let cfg = DeepTConfig::precise(128);
        b.iter(|| {
            let region = t1_region(&emb, 2, 0.01, PNorm::Linf);
            black_box(deept::certify(&net, &region, label, &cfg))
        })
    });
    g.bench_function("crown_baf", |b| {
        let cfg = CrownConfig::baf();
        b.iter(|| {
            let input = CrownInput::t1(&emb, 2, 0.01, PNorm::L2);
            black_box(crown::certify(&net, &input, label, &cfg))
        })
    });
    g.bench_function("crown_backward", |b| {
        let cfg = CrownConfig::backward();
        b.iter(|| {
            let input = CrownInput::t1(&emb, 2, 0.01, PNorm::L2);
            black_box(crown::certify(&net, &input, label, &cfg))
        })
    });
    g.bench_function("interval", |b| {
        let cfg = CrownConfig::interval();
        b.iter(|| {
            let input = CrownInput::t1(&emb, 2, 0.01, PNorm::L2);
            black_box(crown::certify(&net, &input, label, &cfg))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_verifiers);
criterion_main!(benches);
