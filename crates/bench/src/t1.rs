//! The shared T1 sweep: maximum certified radius per (sentence, position,
//! norm, verifier), the engine behind Tables 1–7.

use deept_core::{NormOrder, PNorm};
use deept_nn::TransformerClassifier;
use deept_telemetry::{NoopProbe, TraceCollector, VerificationTrace};
use deept_tensor::{parallel, Matrix};
use deept_verifier::crown::{self, CrownConfig, CrownInput};
use deept_verifier::deadline::Deadline;
use deept_verifier::deept::{self, DeepTConfig};
use deept_verifier::network::{t1_region, VerifiableTransformer};
use deept_verifier::radius::{
    max_certified_radius_deadline, max_certified_radius_probed, RadiusOutcome,
};

use crate::report::{min_avg, RadiusRow};
use crate::Scale;

/// Verifier under test in a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VerifierKind {
    /// DeepT with the Fast dot product.
    DeepTFast,
    /// DeepT-Fast with the ℓp-first dual-norm order (§6.5 ablation).
    DeepTFastPFirst,
    /// DeepT-Fast without the softmax sum refinement (A.5 ablation).
    DeepTFastNoRefine,
    /// DeepT with the Precise dot product.
    DeepTPrecise,
    /// The Combined variant (Precise last layer only, A.6).
    DeepTCombined,
    /// CROWN-BaF-role linear bounds (collapse at attention scores).
    CrownBaf,
    /// CROWN-Backward-role linear bounds (no collapse).
    CrownBackward,
    /// Interval bound propagation.
    Interval,
}

impl VerifierKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            VerifierKind::DeepTFast => "DeepT-Fast",
            VerifierKind::DeepTFastPFirst => "DeepT-Fast(p-first)",
            VerifierKind::DeepTFastNoRefine => "DeepT-Fast(no-ref)",
            VerifierKind::DeepTPrecise => "DeepT-Precise",
            VerifierKind::DeepTCombined => "DeepT-Combined",
            VerifierKind::CrownBaf => "CROWN-BaF",
            VerifierKind::CrownBackward => "CROWN-Backward",
            VerifierKind::Interval => "Interval",
        }
    }

    fn deept_config(self, scale: Scale) -> Option<DeepTConfig> {
        match self {
            VerifierKind::DeepTFast => Some(DeepTConfig::fast(scale.fast_budget())),
            VerifierKind::DeepTFastPFirst => {
                Some(DeepTConfig::fast(scale.fast_budget()).with_norm_order(NormOrder::PFirst))
            }
            VerifierKind::DeepTFastNoRefine => {
                Some(DeepTConfig::fast(scale.fast_budget()).with_softmax_refinement(false))
            }
            VerifierKind::DeepTPrecise => Some(DeepTConfig::precise(scale.precise_budget())),
            VerifierKind::DeepTCombined => Some(DeepTConfig::combined(scale.precise_budget())),
            _ => None,
        }
    }

    fn crown_config(self) -> Option<CrownConfig> {
        match self {
            VerifierKind::CrownBaf => Some(CrownConfig::baf()),
            VerifierKind::CrownBackward => Some(CrownConfig::backward()),
            VerifierKind::Interval => Some(CrownConfig::interval()),
            _ => None,
        }
    }
}

/// Maximum certified radius for one (sentence, position, norm) query.
pub fn certified_radius(
    model: &TransformerClassifier,
    tokens: &[usize],
    label: usize,
    position: usize,
    p: PNorm,
    kind: VerifierKind,
    scale: Scale,
) -> f64 {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    certified_radius_prepared(&net, &emb, label, position, p, kind, scale)
}

/// [`certified_radius`] with the verifier view and the embedded sentence
/// prepared by the caller. The sweep builds both once (the network per
/// model, the embedding per sentence) instead of once per query — the
/// binary search only ever varies the region radius.
pub fn certified_radius_prepared(
    net: &VerifiableTransformer,
    emb: &Matrix,
    label: usize,
    position: usize,
    p: PNorm,
    kind: VerifierKind,
    scale: Scale,
) -> f64 {
    let iters = scale.radius_iters();
    // Each query gets its own budget from `--timeout-ms`; with no flag the
    // deadline never expires and the query sequence is unchanged.
    let deadline = Deadline::after_ms(crate::query_timeout_ms());
    let outcome = if let Some(cfg) = kind.deept_config(scale) {
        max_certified_radius_deadline(
            |r| {
                let region = t1_region(emb, position, r, p);
                Ok(deept::certify_deadline(net, &region, label, &cfg, deadline)?.certified)
            },
            0.01,
            iters,
            deadline,
            &NoopProbe,
        )
    } else {
        // The CROWN baselines have no cooperative checkpoints inside a
        // query; the deadline is still polled between queries.
        let cfg = kind.crown_config().expect("crown kind");
        max_certified_radius_deadline(
            |r| {
                let input = CrownInput::t1(emb, position, r, p);
                Ok(crown::certify(net, &input, label, &cfg).certified)
            },
            0.01,
            iters,
            deadline,
            &NoopProbe,
        )
    };
    match outcome {
        RadiusOutcome::Completed(r) => r,
        RadiusOutcome::TimedOut {
            lower_bound,
            queries,
        } => {
            deept_telemetry::info!(
                "bench",
                "query ({} position {position} {p}) timed out after {queries} queries; \
                 using partial radius {lower_bound:.6}",
                kind.name()
            );
            lower_bound
        }
    }
}

/// Runs one representative radius search under an active [`TraceCollector`]
/// and returns the assembled trace: per-iteration and per-layer spans,
/// noise-symbol counts, width growth and the radius query sequence.
///
/// Used by the table binaries to emit a hotspot summary and a structured
/// trace JSON next to their result tables. The probed run is bitwise
/// identical to the plain one, so sampling one query does not perturb the
/// benchmark.
pub fn sample_trace(
    model: &TransformerClassifier,
    tokens: &[usize],
    label: usize,
    position: usize,
    p: PNorm,
    kind: VerifierKind,
    scale: Scale,
) -> VerificationTrace {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    let iters = scale.radius_iters();
    let collector = TraceCollector::new();
    if let Some(cfg) = kind.deept_config(scale) {
        max_certified_radius_probed(
            |r| {
                let region = t1_region(&emb, position, r, p);
                deept::certify_probed(&net, &region, label, &cfg, &collector).certified
            },
            0.01,
            iters,
            &collector,
        );
    } else {
        let cfg = kind.crown_config().expect("crown kind");
        max_certified_radius_probed(
            |r| {
                let input = CrownInput::t1(&emb, position, r, p);
                crown::certify_probed(&net, &input, label, &cfg, &collector).certified
            },
            0.01,
            iters,
            &collector,
        );
    }
    let mut trace = collector.finish();
    trace.set_meta("verifier", kind.name());
    trace.set_meta("norm", &p.to_string());
    trace.set_meta("position", &position.to_string());
    trace.set_meta("tokens", &tokens.len().to_string());
    let kernel = deept_tensor::parallel::kernel_mode();
    trace.set_meta("kernel", kernel.label());
    trace.set_meta(
        "isa",
        match kernel {
            deept_tensor::parallel::KernelMode::Simd => deept_tensor::simd::active_isa().label(),
            _ => "scalar",
        },
    );
    trace.set_meta(
        "prec",
        if deept_core::eps::prec_f32() {
            "f32"
        } else {
            "f64"
        },
    );
    trace
}

/// Traces one representative query for a table binary — the first
/// evaluation sentence, perturbed at position 0 — then prints the hotspot
/// summary next to the table output and saves the structured trace as
/// `artifacts/results/<name>_trace.json`. No-op on an empty sentence set.
pub fn emit_table_trace(
    name: &str,
    model: &TransformerClassifier,
    sentences: &[(Vec<usize>, usize)],
    p: PNorm,
    kind: VerifierKind,
    scale: Scale,
) {
    let Some((tokens, label)) = sentences.first() else {
        return;
    };
    let mut trace = sample_trace(model, tokens, *label, 0, p, kind, scale);
    trace.set_meta("table", name);
    crate::report::print_trace_summary(&format!("{name} — {}", kind.name()), &trace, 5);
    crate::report::save_trace(&format!("{name}_trace"), &trace);
}

/// Runs the full sweep for one model: all sentences × positions × norms,
/// parallelized across queries. Returns one row per norm.
pub fn radius_sweep(
    model: &TransformerClassifier,
    sentences: &[(Vec<usize>, usize)],
    norms: &[PNorm],
    kind: VerifierKind,
    scale: Scale,
    layers: usize,
) -> Vec<RadiusRow> {
    // Hoisted out of the query loop: the verifier view of the model (shared
    // by every query) and the embedding of each sentence (shared by every
    // position and norm probing it).
    let net = VerifiableTransformer::from(model);
    let embeddings: Vec<Matrix> = sentences.iter().map(|(t, _)| model.embed(t)).collect();
    let mut rows = Vec::new();
    for &p in norms {
        let queries: Vec<(usize, usize)> = sentences
            .iter()
            .enumerate()
            .flat_map(|(si, (tokens, _))| {
                let n_pos = scale.positions().min(tokens.len());
                // Spread evaluated positions across the sentence.
                (0..n_pos).map(move |k| (si, k * tokens.len() / n_pos))
            })
            .collect();
        let start = std::time::Instant::now();
        let radii = parallel::par_map(&queries, 1, |&(si, pos)| {
            let label = sentences[si].1;
            certified_radius_prepared(&net, &embeddings[si], label, pos, p, kind, scale)
        });
        let elapsed = start.elapsed().as_secs_f64();
        let (min, avg) = min_avg(&radii);
        rows.push(RadiusRow {
            layers,
            norm: p.to_string(),
            verifier: kind.name().to_string(),
            min,
            avg,
            time_s: elapsed,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_and_plain_radius_queries_agree() {
        use deept_nn::transformer::{LayerNormKind, TransformerConfig};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let model = TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 11,
                max_len: 6,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 12,
                num_layers: 1,
                num_classes: 2,
                layer_norm: LayerNormKind::NoStd,
            },
            &mut rng,
        );
        let tokens = [1usize, 4, 7];
        let label = model.predict(&tokens);
        let scale = Scale::Quick;
        let plain = certified_radius(
            &model,
            &tokens,
            label,
            1,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
        let net = VerifiableTransformer::from(&model);
        let emb = model.embed(&tokens);
        let prepared = certified_radius_prepared(
            &net,
            &emb,
            label,
            1,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
        assert_eq!(plain, prepared);
    }

    #[test]
    fn verifier_names_are_distinct() {
        let kinds = [
            VerifierKind::DeepTFast,
            VerifierKind::DeepTPrecise,
            VerifierKind::DeepTCombined,
            VerifierKind::CrownBaf,
            VerifierKind::CrownBackward,
            VerifierKind::Interval,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
