//! Shared machinery for the experiment binaries (`table1` … `table14`) that
//! regenerate the tables of the DeepT paper, and for the Criterion
//! micro-benchmarks.
//!
//! Every binary accepts `--quick` (default) or `--full`; the scale of each
//! preset and every substitution relative to the paper's setup is documented
//! in DESIGN.md and EXPERIMENTS.md. Trained models are cached as JSON under
//! `artifacts/models/` so tables can be re-run instantly.

pub mod models;
pub mod report;
pub mod t1;

/// Run scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small models, few examples — minutes per table.
    Quick,
    /// Larger models and sweeps.
    Full,
}

impl Scale {
    /// Parses process arguments (`--full` selects [`Scale::Full`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The encoder depths standing in for the paper's `M ∈ {3, 6, 12}`
    /// progression (scaled down in quick mode; the *trend* across the
    /// progression is the claim under reproduction).
    pub fn depths(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 2, 4],
            Scale::Full => vec![3, 6, 12],
        }
    }

    /// Number of evaluation sentences per table.
    pub fn sentences(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 10,
        }
    }

    /// Number of perturbed positions evaluated per sentence.
    pub fn positions(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 4,
        }
    }

    /// Binary-search iterations for the certified radius.
    pub fn radius_iters(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 18,
        }
    }

    /// Noise-symbol budget for DeepT-Fast (the paper uses 14 000 at its
    /// scale; ours is proportional to our layer widths).
    pub fn fast_budget(self) -> usize {
        match self {
            Scale::Quick => 1500,
            Scale::Full => 3000,
        }
    }

    /// Noise-symbol budget for DeepT-Precise (paper: 10 000).
    pub fn precise_budget(self) -> usize {
        match self {
            Scale::Quick => 192,
            Scale::Full => 384,
        }
    }

    /// Cache-key suffix.
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Per-query timeout in milliseconds, parsed once from `--timeout-ms N` on
/// the command line (shared by every table binary); `None` when absent.
///
/// Each certification query gets its own budget, so a slow query is cut
/// off with a sound partial radius instead of stalling the whole sweep.
pub fn query_timeout_ms() -> Option<u64> {
    static TIMEOUT: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--timeout-ms")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    })
}

/// Repository-level artifact directory (models, result JSON).
pub fn artifact_dir() -> std::path::PathBuf {
    let root = std::env::var("DEEPT_ARTIFACTS").unwrap_or_else(|_| {
        format!(
            "{}/artifacts",
            env!("CARGO_MANIFEST_DIR").replace("/crates/bench", "")
        )
    });
    std::path::PathBuf::from(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets_are_ordered() {
        assert!(Scale::Quick.sentences() <= Scale::Full.sentences());
        assert!(Scale::Quick.fast_budget() <= Scale::Full.fast_budget());
        assert_eq!(Scale::Quick.depths().len(), 3);
        assert_eq!(Scale::Full.depths(), vec![3, 6, 12]);
    }

    #[test]
    fn artifact_dir_is_absolute_or_env_driven() {
        let d = artifact_dir();
        assert!(d.to_string_lossy().contains("artifacts"));
    }

    #[test]
    fn query_timeout_defaults_to_none() {
        // The test harness is not started with --timeout-ms.
        assert_eq!(query_timeout_ms(), None);
    }
}
