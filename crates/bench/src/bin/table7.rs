//! Table 7: certification of Transformers trained *with* the standard
//! layer normalization (division by the standard deviation, §6.6) — the
//! setting the paper shows is much harder to certify than the no-std
//! variant.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let norms = [PNorm::L1, PNorm::L2, PNorm::Linf];
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::Std { epsilon: 1e-5 },
            scale,
        });
        println!(
            "[table7] M = {layers} (std layer norm): test accuracy {:.3}",
            trained.accuracy
        );
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences().min(3), 10);
        for kind in [VerifierKind::DeepTFast, VerifierKind::CrownBaf] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &norms,
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    print_radius_table("Table 7 — standard layer normalization", &rows);
    save_results("table7", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table7",
            model,
            sentences,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
    }
}
