//! Table 11 (Appendix A.3): DeepT-Fast certification of a Vision
//! Transformer classifying synthetic digit-like images, against ℓ1/ℓ2/ℓ∞
//! pixel perturbations mapped through the patch embedding.

use deept_bench::models::a3_vit;
use deept_bench::report::{min_avg, save_results, timed};
use deept_bench::Scale;
use deept_core::{PNorm, Zonotope};
use deept_nn::train::accuracy;
use deept_tensor::Matrix;
use deept_verifier::deept::{certify, DeepTConfig};
use deept_verifier::network::VerifiableTransformer;
use deept_verifier::radius::max_certified_radius;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct VitRow {
    norm: String,
    min: f64,
    avg: f64,
    time_s: f64,
}

fn main() {
    let scale = Scale::from_args();
    let (vit, data) = a3_vit(scale);
    println!("[table11] ViT accuracy {:.3}", accuracy(&vit, &data));
    let net = VerifiableTransformer::from(&vit);
    let cfg = DeepTConfig::fast(scale.fast_budget());
    let images: Vec<&(Vec<f64>, usize)> = data
        .iter()
        .filter(|(x, y)| vit.predict(x) == *y)
        .take(if scale == Scale::Quick { 5 } else { 12 })
        .collect();

    let mut rows = Vec::new();
    for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
        let (radii, time) = timed(|| {
            images
                .iter()
                .map(|(pixels, label)| {
                    max_certified_radius(
                        |r| {
                            // Pixel-space ball, pushed through the (affine)
                            // patch embedding — exact in the domain.
                            let px = Matrix::row_vector(pixels.to_vec());
                            let region = Zonotope::from_lp_ball(&px, r, p, &[0]);
                            let tokens = vit.patches.num_tokens();
                            let pdim = vit.patches.patch_dim();
                            // Rearrange pixels into the patch matrix.
                            let perm = patch_permutation(&vit.patches);
                            let patches = region.linear_vars(&perm, tokens, pdim);
                            let embedded = patches
                                .matmul_right(&vit.patch_w)
                                .add_row_bias(vit.patch_b.row(0))
                                .add_const(&vit.pos_embed);
                            certify(&net, &embedded, *label, &cfg).certified
                        },
                        0.01,
                        scale.radius_iters(),
                    )
                })
                .collect::<Vec<f64>>()
        });
        let (min, avg) = min_avg(&radii);
        println!("{p:<5} min {min:.4}  avg {avg:.4}  time {time:.2}s");
        rows.push(VitRow {
            norm: p.to_string(),
            min,
            avg,
            time_s: time,
        });
    }
    save_results("table11", &rows);
}

/// Permutation matrix mapping flat row-major pixels to the flattened patch
/// layout used by the ViT embedder.
fn patch_permutation(cfg: &deept_nn::PatchConfig) -> Matrix {
    let n = cfg.image_h * cfg.image_w;
    // Reuse the concrete extractor on indicator images to build the matrix.
    let mut perm = Matrix::zeros(n, n);
    let mut unit = vec![0.0; n];
    for i in 0..n {
        unit[i] = 1.0;
        let p = cfg.patches(&unit);
        for (dst, &v) in p.as_slice().iter().enumerate() {
            if v != 0.0 {
                perm.set(dst, i, v);
            }
        }
        unit[i] = 0.0;
    }
    perm
}
