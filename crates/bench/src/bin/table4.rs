//! Table 4 / Table 12 (Appendix A.4): the precision–performance trade-off
//! under ℓ∞ perturbations — DeepT-Fast, CROWN-BaF, DeepT-Precise and
//! CROWN-Backward on the same networks.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        println!(
            "[table4] M = {layers}: test accuracy {:.3}",
            trained.accuracy
        );
        // The paper evaluates one random position per sentence for the slow
        // verifiers; we keep the same (reduced) position budget for all.
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences().min(3), 10);
        for kind in [
            VerifierKind::DeepTFast,
            VerifierKind::CrownBaf,
            VerifierKind::DeepTPrecise,
            VerifierKind::CrownBackward,
        ] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &[PNorm::Linf],
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    print_radius_table(
        "Table 4 / Table 12 — precision vs performance (linf)",
        &rows,
    );
    save_results("table4", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table4",
            model,
            sentences,
            PNorm::Linf,
            VerifierKind::DeepTPrecise,
            scale,
        );
    }
}
