//! Table 2: DeepT-Fast vs CROWN-BaF on the larger Yelp-like corpus
//! (longer sentences, bigger vocabulary), across depth and norms.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let norms = [PNorm::L1, PNorm::L2, PNorm::Linf];
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Yelp,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        println!(
            "[table2] M = {layers}: test accuracy {:.3}",
            trained.accuracy
        );
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences(), 12);
        for kind in [VerifierKind::DeepTFast, VerifierKind::CrownBaf] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &norms,
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    // Order rows (M, norm, verifier) so the ratio column compares
    // DeepT-Fast (first) against CROWN-BaF, as in the paper.
    rows.sort_by(|a, b| {
        (a.layers, &a.norm, &a.verifier)
            .partial_cmp(&(b.layers, &b.norm, &b.verifier))
            .unwrap()
    });
    print_radius_table("Table 2 — DeepT-Fast vs CROWN-BaF (Yelp-like)", &rows);
    save_results("table2", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table2",
            model,
            sentences,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
    }
}
