//! Table 9: a qualitative example — one certifiable sentence with its
//! per-position synonym sets and the size of the combination space that
//! enumeration would have to cover.

use deept_bench::models::t2_model;
use deept_bench::Scale;
use deept_verifier::deept::DeepTConfig;
use deept_verifier::synonym;

fn main() {
    let scale = Scale::from_args();
    let (trained, synonyms) = t2_model(scale);
    let cfg = DeepTConfig::fast(scale.fast_budget());
    // The sentence with the largest combination count that still certifies.
    let mut best: Option<(&(Vec<usize>, usize), u128)> = None;
    for ex in trained.dataset.test.iter().take(150) {
        let (tokens, label) = ex;
        if trained.model.predict(tokens) != *label {
            continue;
        }
        let combos = synonyms.combinations(tokens);
        if best.as_ref().is_some_and(|&(_, c)| combos <= c) {
            continue;
        }
        if synonym::certify_deept(&trained.model, tokens, &synonyms, *label, &cfg).certified {
            best = Some((ex, combos));
        }
    }
    let Some(((tokens, label), combos)) = best else {
        println!("no certifiable sentence found at this scale — rerun with --full");
        return;
    };
    println!("Certified sentence (label = {label}) with {combos} synonym combinations:");
    println!("{:<10} {:<12} Synonyms", "Token", "#Synonyms");
    for &t in tokens {
        let names: Vec<&str> = synonyms
            .of(t)
            .iter()
            .map(|&s| trained.dataset.vocab.token(s).name.as_str())
            .collect();
        println!(
            "{:<10} {:<12} {}",
            trained.dataset.vocab.token(t).name,
            names.len(),
            if names.is_empty() {
                "∅".to_string()
            } else {
                names.join(", ")
            }
        );
    }
}
