//! Table 8: certification against synonym attacks (threat model T2, §6.7) —
//! certified-sentence counts and per-sentence time for DeepT-Fast and
//! CROWN-BaF, plus the enumeration baseline's measured throughput and the
//! implied cost of exhausting the combination space.

use std::time::Instant;

use deept_bench::models::t2_model;
use deept_bench::report::save_results;
use deept_bench::Scale;
use deept_verifier::crown::CrownConfig;
use deept_verifier::deept::DeepTConfig;
use deept_verifier::synonym;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct T2Row {
    verifier: String,
    certified: usize,
    total: usize,
    rate: f64,
    avg_time_s: f64,
}

fn main() {
    let scale = Scale::from_args();
    let (trained, synonyms) = t2_model(scale);
    println!("[table8] network accuracy {:.3}", trained.accuracy);

    // Evaluation sentences: correctly classified, with a non-trivial number
    // of synonym combinations (the paper targets ≥ 32 000 at its scale).
    let min_combos: u128 = if scale == Scale::Quick { 1024 } else { 32_000 };
    let mut sentences: Vec<(Vec<usize>, usize)> = trained
        .dataset
        .test
        .iter()
        .chain(trained.dataset.train.iter())
        .filter(|(t, l)| trained.model.predict(t) == *l && synonyms.combinations(t) >= min_combos)
        .take(if scale == Scale::Quick { 15 } else { 60 })
        .cloned()
        .collect();
    // Hardest first, so the printed examples are the interesting ones.
    sentences.sort_by_key(|(t, _)| std::cmp::Reverse(synonyms.combinations(t)));
    println!(
        "[table8] {} sentences, combination counts {:?}…",
        sentences.len(),
        sentences
            .iter()
            .take(5)
            .map(|(t, _)| synonyms.combinations(t))
            .collect::<Vec<_>>()
    );

    let mut rows = Vec::new();
    let deept_cfg = DeepTConfig::fast(scale.fast_budget());
    let crown_cfg = CrownConfig::baf();
    for verifier in ["DeepT-Fast", "CROWN-BaF"] {
        let start = Instant::now();
        let mut certified = 0;
        for (tokens, label) in &sentences {
            let ok = match verifier {
                "DeepT-Fast" => {
                    synonym::certify_deept(&trained.model, tokens, &synonyms, *label, &deept_cfg)
                        .certified
                }
                _ => {
                    synonym::certify_crown(&trained.model, tokens, &synonyms, *label, &crown_cfg)
                        .certified
                }
            };
            certified += usize::from(ok);
        }
        let avg = start.elapsed().as_secs_f64() / sentences.len().max(1) as f64;
        println!(
            "{verifier:<12} certified {certified}/{} ({:.0}%), avg {:.3}s/sentence",
            sentences.len(),
            100.0 * certified as f64 / sentences.len().max(1) as f64,
            avg
        );
        rows.push(T2Row {
            verifier: verifier.to_string(),
            certified,
            total: sentences.len(),
            rate: certified as f64 / sentences.len().max(1) as f64,
            avg_time_s: avg,
        });
    }

    // Enumeration baseline: measure classification throughput on a bounded
    // sample, then report the implied cost of the full combination space.
    let limit = 2000u64;
    let start = Instant::now();
    let mut enumerated = 0u64;
    for (tokens, label) in &sentences {
        let out = synonym::enumerate(&trained.model, tokens, &synonyms, *label, limit);
        enumerated += out.checked;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let per_combo = elapsed / enumerated.max(1) as f64;
    let total_combos: f64 = sentences
        .iter()
        .map(|(t, _)| synonyms.combinations(t) as f64)
        .sum();
    println!(
        "Enumeration: {:.1} combos/s measured; exhausting all {:.3e} combinations would take ≈ {:.1}s \
         ({:.1}x the DeepT-Fast total)",
        1.0 / per_combo,
        total_combos,
        per_combo * total_combos,
        per_combo * total_combos / (rows[0].avg_time_s * sentences.len() as f64).max(1e-9),
    );
    if let Some((hardest, _)) = sentences.first() {
        let c = synonyms.combinations(hardest) as f64;
        println!(
            "Hardest sentence: {c:.3e} combinations → enumeration ≈ {:.1}s vs one abstract \
             certification ≈ {:.2}s ({:.0}x)",
            per_combo * c,
            rows[0].avg_time_s,
            per_combo * c / rows[0].avg_time_s.max(1e-9),
        );
    }
    save_results("table8", &rows);
}
