//! Table 10 (Appendix A.2): the complete branch-and-bound verifier
//! (GeoCert role) vs the Multi-norm Zonotope verifier on a binary MLP with
//! the paper's 10-50-10 hidden sizes. The complete method certifies larger
//! (exact) radii at a much higher cost; the zonotope is orders of magnitude
//! faster. (Our complete search runs on ℓ∞ boxes — see DESIGN.md
//! substitution 5; both columns use ℓ∞.)

use deept_bench::models::a2_mlp;
use deept_bench::report::{min_avg, save_results, timed};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_geocert::{max_robust_radius_linf, zonotope_radius, BnbConfig};
use deept_nn::train::accuracy;
use deept_verifier::Deadline;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct A2Row {
    verifier: String,
    min: f64,
    avg: f64,
    time_s: f64,
}

fn main() {
    let scale = Scale::from_args();
    let (mlp, data) = a2_mlp(scale);
    println!("[table10] MLP accuracy {:.3}", accuracy(&mlp, &data));
    let points: Vec<&(Vec<f64>, usize)> = data
        .iter()
        .filter(|(x, y)| mlp.predict(x) == *y)
        .take(if scale == Scale::Quick { 4 } else { 15 })
        .collect();

    let budget_ms = if scale == Scale::Quick { 1_000 } else { 10_000 };
    let iters = if scale == Scale::Quick { 8 } else { 12 };
    let (complete_radii, complete_time) = timed(|| {
        points
            .iter()
            .map(|(x, y)| {
                // Fresh per-point deadline: BnbConfig carries an absolute
                // cut-off, serve-style.
                let cfg = BnbConfig::with_deadline(Deadline::after_ms(Some(budget_ms)));
                max_robust_radius_linf(&mlp, x, *y, &cfg, iters)
            })
            .collect::<Vec<f64>>()
    });
    let (zono_radii, zono_time) = timed(|| {
        points
            .iter()
            .map(|(x, y)| zonotope_radius(&mlp, x, PNorm::Linf, *y, 20))
            .collect::<Vec<f64>>()
    });
    let mut rows = Vec::new();
    for (name, radii, time) in [
        (
            "Complete-BnB (GeoCert role)",
            &complete_radii,
            complete_time,
        ),
        ("DeepT (zonotope)", &zono_radii, zono_time),
    ] {
        let (min, avg) = min_avg(radii);
        println!("{name:<28} min {min:.4}  avg {avg:.4}  time {time:.2}s");
        rows.push(A2Row {
            verifier: name.to_string(),
            min,
            avg,
            time_s: time,
        });
    }
    for (c, z) in complete_radii.iter().zip(&zono_radii) {
        assert!(c + 1e-6 >= *z, "complete radius below zonotope radius");
    }
    save_results("table10", &rows);
}
