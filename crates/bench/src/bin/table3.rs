//! Table 3: DeepT-Fast vs CROWN-BaF on wide Transformers (2x embedding,
//! 4x hidden size — mirroring the paper's 256/512 setting). The paper's
//! CROWN-BaF fails with out-of-memory at M = 12; our linear-bound variant
//! does not share that blow-up (documented deviation), so both columns run.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let norms = [PNorm::L1, PNorm::L2, PNorm::Linf];
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Wide,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        println!(
            "[table3] M = {layers}: test accuracy {:.3}",
            trained.accuracy
        );
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences(), 12);
        for kind in [VerifierKind::DeepTFast, VerifierKind::CrownBaf] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &norms,
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    // Order rows (M, norm, verifier) so the ratio column compares
    // DeepT-Fast (first) against CROWN-BaF, as in the paper.
    rows.sort_by(|a, b| {
        (a.layers, &a.norm, &a.verifier)
            .partial_cmp(&(b.layers, &b.norm, &b.verifier))
            .unwrap()
    });
    print_radius_table("Table 3 — wide networks (2x embed, 4x hidden)", &rows);
    save_results("table3", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table3",
            model,
            sentences,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
    }
}
