//! Table 14 (Appendix A.6): the Combined DeepT verifier (Precise dot
//! product in the last layer only) against CROWN-Backward under ℓ∞.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    // The paper's A.6 evaluates the 6- and 12-layer networks; we take the
    // deeper two of the depth progression.
    let depths = scale.depths();
    let mut deepest = None;
    for &layers in &depths[1..] {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences().min(3), 10);
        for kind in [VerifierKind::DeepTCombined, VerifierKind::CrownBackward] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &[PNorm::Linf],
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    print_radius_table("Table 14 — Combined DeepT vs CROWN-Backward (linf)", &rows);
    save_results("table14", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table14",
            model,
            sentences,
            PNorm::Linf,
            VerifierKind::DeepTCombined,
            scale,
        );
    }
}
