//! Table 13 (Appendix A.5): ablation of the softmax-sum zonotope
//! refinement (§5.3) — DeepT-Fast with vs without the constraint.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let norms = [PNorm::L1, PNorm::L2, PNorm::Linf];
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences(), 12);
        for kind in [VerifierKind::DeepTFast, VerifierKind::DeepTFastNoRefine] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &norms,
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    print_radius_table("Table 13 — softmax sum refinement ablation", &rows);
    for layers in scale.depths() {
        for norm in ["l1", "l2", "linf"] {
            let with = rows
                .iter()
                .find(|r| r.layers == layers && r.norm == norm && !r.verifier.contains("no-ref"))
                .map(|r| r.avg)
                .unwrap_or(0.0);
            let without = rows
                .iter()
                .find(|r| r.layers == layers && r.norm == norm && r.verifier.contains("no-ref"))
                .map(|r| r.avg)
                .unwrap_or(0.0);
            if without > 0.0 {
                println!(
                    "M = {layers}, {norm}: refinement change {:+.3}%",
                    100.0 * (with - without) / without
                );
            }
        }
    }
    save_results("table13", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table13",
            model,
            sentences,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
    }
}
