//! Table 6: dual-norm application order ablation for the Fast dot-product
//! transformer (§6.5) — collapse the ℓ∞ operand first vs the ℓp operand
//! first, on ℓ1 and ℓ2 perturbations.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences(), 12);
        for kind in [VerifierKind::DeepTFast, VerifierKind::DeepTFastPFirst] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &[PNorm::L1, PNorm::L2],
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    print_radius_table("Table 6 — dual-norm order (inf-first vs p-first)", &rows);
    // Also report the per-setting average change, as the paper does.
    let mut changes = Vec::new();
    for layers in scale.depths() {
        for norm in ["l1", "l2"] {
            let a = rows
                .iter()
                .find(|r| r.layers == layers && r.norm == norm && r.verifier.ends_with("Fast"))
                .map(|r| r.avg)
                .unwrap_or(0.0);
            let b = rows
                .iter()
                .find(|r| r.layers == layers && r.norm == norm && r.verifier.contains("p-first"))
                .map(|r| r.avg)
                .unwrap_or(0.0);
            if b > 0.0 {
                let pct = 100.0 * (a - b) / b;
                println!("M = {layers}, {norm}: inf-first avg change {pct:+.2}%");
                changes.push(pct);
            }
        }
    }
    save_results("table6", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table6",
            model,
            sentences,
            PNorm::L2,
            VerifierKind::DeepTFast,
            scale,
        );
    }
}
