//! Table 5: ℓ1 and ℓ2 comparison of DeepT-Fast against both CROWN-BaF and
//! CROWN-Backward.

use deept_bench::models::{sentiment_model, Corpus, SentimentPreset, Width};
use deept_bench::report::{print_radius_table, save_results};
use deept_bench::t1::{emit_table_trace, radius_sweep, VerifierKind};
use deept_bench::Scale;
use deept_core::PNorm;
use deept_nn::LayerNormKind;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut deepest = None;
    for layers in scale.depths() {
        let trained = sentiment_model(SentimentPreset {
            corpus: Corpus::Sst,
            layers,
            width: Width::Base,
            layer_norm: LayerNormKind::NoStd,
            scale,
        });
        println!(
            "[table5] M = {layers}: test accuracy {:.3}",
            trained.accuracy
        );
        let sentences = deept_bench::models::eval_sentences(&trained, scale.sentences().min(3), 10);
        for kind in [
            VerifierKind::DeepTFast,
            VerifierKind::CrownBaf,
            VerifierKind::CrownBackward,
        ] {
            rows.extend(radius_sweep(
                &trained.model,
                &sentences,
                &[PNorm::L1, PNorm::L2],
                kind,
                scale,
                layers,
            ));
        }
        deepest = Some((trained.model, sentences));
    }
    print_radius_table("Table 5 — l1/l2 vs CROWN-BaF and CROWN-Backward", &rows);
    save_results("table5", &rows);
    if let Some((model, sentences)) = &deepest {
        emit_table_trace(
            "table5",
            model,
            sentences,
            PNorm::L1,
            VerifierKind::DeepTFast,
            scale,
        );
    }
}
