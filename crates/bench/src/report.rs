//! Result rows, table rendering and JSON persistence for the experiment
//! binaries.

use std::time::Instant;

use deept_telemetry::VerificationTrace;
use serde::Serialize;

/// One row of a certified-radius table (the layout of Tables 1–7).
#[derive(Debug, Clone, Serialize)]
pub struct RadiusRow {
    /// Encoder depth.
    pub layers: usize,
    /// Perturbation norm label (`l1`, `l2`, `linf`).
    pub norm: String,
    /// Verifier name.
    pub verifier: String,
    /// Minimum certified radius over the evaluation set.
    pub min: f64,
    /// Average certified radius.
    pub avg: f64,
    /// Total wall-clock seconds for the sweep.
    pub time_s: f64,
}

/// Renders radius rows grouped per (layers, norm) with a ratio column
/// between the first verifier and each other, mirroring the paper's table
/// format.
pub fn print_radius_table(title: &str, rows: &[RadiusRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<4} {:<5} {:<18} {:>12} {:>12} {:>9} {:>8}",
        "M", "lp", "verifier", "min", "avg", "time[s]", "ratio"
    );
    let mut keys: Vec<(usize, String)> = Vec::new();
    for r in rows {
        let key = (r.layers, r.norm.clone());
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    for (layers, norm) in keys {
        let group: Vec<&RadiusRow> = rows
            .iter()
            .filter(|r| r.layers == layers && r.norm == norm)
            .collect();
        // Ratio column: the first DeepT verifier's average over this row's
        // average, matching the paper's "Ratio" convention.
        let base = group
            .iter()
            .find(|r| r.verifier.starts_with("DeepT"))
            .or(group.first())
            .map(|r| r.avg)
            .unwrap_or(0.0);
        for r in group {
            let ratio = if r.avg > 0.0 {
                base / r.avg
            } else {
                f64::INFINITY
            };
            println!(
                "{:<4} {:<5} {:<18} {:>12.3e} {:>12.3e} {:>9.2} {:>8.2}",
                r.layers, r.norm, r.verifier, r.min, r.avg, r.time_s, ratio
            );
        }
    }
}

/// Saves any serializable result set under `artifacts/results/<name>.json`.
pub fn save_results<T: Serialize>(name: &str, value: &T) {
    let dir = crate::artifact_dir().join("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    deept_telemetry::info!("report", "could not write {}: {e}", path.display());
                } else {
                    deept_telemetry::info!("report", "results saved to {}", path.display());
                }
            }
            Err(e) => deept_telemetry::info!("report", "serialization failed: {e}"),
        }
    }
}

/// Prints a trace's hotspot summary (top-`top_k` span groups by self time)
/// and per-layer width-growth table to stdout, next to the result tables.
pub fn print_trace_summary(title: &str, trace: &VerificationTrace, top_k: usize) {
    println!("\n== {title}: telemetry ==");
    println!("{}", trace.render_summary(top_k));
}

/// Saves a verification trace under `artifacts/results/<name>.json`.
pub fn save_trace(name: &str, trace: &VerificationTrace) {
    let dir = crate::artifact_dir().join("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match trace.save_json(&path) {
            Ok(()) => deept_telemetry::info!("report", "trace saved to {}", path.display()),
            Err(e) => deept_telemetry::info!("report", "could not write {}: {e}", path.display()),
        }
    }
}

/// Times a closure, returning its value and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

/// Summary statistics of a set of radii.
pub fn min_avg(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    (min, avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_avg_basics() {
        assert_eq!(min_avg(&[]), (0.0, 0.0));
        let (min, avg) = min_avg(&[1.0, 3.0]);
        assert_eq!(min, 1.0);
        assert_eq!(avg, 2.0);
    }

    #[test]
    fn timed_returns_value() {
        let (v, t) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }
}
