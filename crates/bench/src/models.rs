//! Trained-model presets with on-disk caching.
//!
//! Every experiment draws its networks from here; the first run trains from
//! scratch (as the paper does) and caches the weights under
//! `artifacts/models/`, so re-running a table is fast.

use deept_data::sentiment::{self, SentimentDataset};
use deept_data::SynonymSets;
use deept_nn::train::{accuracy, train, TrainConfig};
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_nn::vit::{PatchConfig, VisionTransformer};
use deept_nn::Mlp;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::Scale;

/// Which corpus a sentiment model is trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// The SST-like synthetic corpus.
    Sst,
    /// The larger Yelp-like synthetic corpus.
    Yelp,
}

/// Architecture width preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// E = 16, H = 32 (the default scaled-down width).
    Base,
    /// E = 32, H = 128 (the Table 3 "wide" setting: 2× embedding,
    /// 4× hidden, mirroring the paper's 256/512 over its 128/128 default).
    Wide,
}

/// A sentiment-model preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentimentPreset {
    /// Corpus.
    pub corpus: Corpus,
    /// Number of encoder layers.
    pub layers: usize,
    /// Width.
    pub width: Width,
    /// Layer-norm flavour.
    pub layer_norm: LayerNormKind,
    /// Scale (affects training size).
    pub scale: Scale,
}

impl SentimentPreset {
    fn cache_key(&self) -> String {
        let corpus = match self.corpus {
            Corpus::Sst => "sst",
            Corpus::Yelp => "yelp",
        };
        let width = match self.width {
            Width::Base => "base",
            Width::Wide => "wide",
        };
        let ln = match self.layer_norm {
            LayerNormKind::NoStd => "nostd",
            LayerNormKind::Std { .. } => "std",
        };
        format!(
            "{corpus}_m{}_{width}_{ln}_{}",
            self.layers,
            self.scale.tag()
        )
    }

    fn transformer_config(&self, vocab: usize, max_len: usize) -> TransformerConfig {
        let (e, h) = match self.width {
            Width::Base => (16, 32),
            Width::Wide => (32, 128),
        };
        TransformerConfig {
            vocab_size: vocab,
            max_len,
            embed_dim: e,
            num_heads: 4,
            hidden_dim: h,
            num_layers: self.layers,
            num_classes: 2,
            layer_norm: self.layer_norm,
        }
    }
}

/// The dataset used by a corpus at a scale (deterministic per seed).
pub fn corpus_dataset(corpus: Corpus, scale: Scale) -> SentimentDataset {
    let mut spec = match corpus {
        Corpus::Sst => sentiment::sst_spec(),
        Corpus::Yelp => sentiment::yelp_spec(),
    };
    if scale == Scale::Quick {
        spec.train = spec.train.min(900);
        spec.test = spec.test.min(200);
        spec.max_len = spec.max_len.min(10);
    }
    let seed = match corpus {
        Corpus::Sst => 101,
        Corpus::Yelp => 202,
    };
    sentiment::generate(spec, &mut ChaCha8Rng::seed_from_u64(seed))
}

/// A trained model with its dataset and test accuracy.
pub struct TrainedSentimentModel {
    /// The trained network.
    pub model: TransformerClassifier,
    /// The corpus it was trained on.
    pub dataset: SentimentDataset,
    /// Held-out accuracy.
    pub accuracy: f64,
}

/// Trains (or loads from cache) a sentiment model.
pub fn sentiment_model(preset: SentimentPreset) -> TrainedSentimentModel {
    let dataset = corpus_dataset(preset.corpus, preset.scale);
    let path = crate::artifact_dir()
        .join("models")
        .join(format!("{}.json", preset.cache_key()));
    let cfg = preset.transformer_config(
        dataset.vocab.len(),
        dataset
            .train
            .iter()
            .map(|(t, _)| t.len())
            .max()
            .unwrap_or(16),
    );
    let model: TransformerClassifier = deept_nn::io::load_or_build(&path, || {
        let mut rng = ChaCha8Rng::seed_from_u64(7 + preset.layers as u64);
        let mut model = TransformerClassifier::new(cfg.clone(), &mut rng);
        let epochs = match preset.scale {
            Scale::Quick => 6,
            Scale::Full => 10,
        };
        deept_telemetry::info!(
            "models",
            "training {} ({epochs} epochs)…",
            preset.cache_key()
        );
        let stats = train(
            &mut model,
            &dataset.train,
            TrainConfig {
                epochs,
                batch_size: 16,
                lr: 2e-3,
            },
            &mut rng,
        );
        if let Some(last) = stats.last() {
            deept_telemetry::info!(
                "models",
                "{} train acc {:.3}, loss {:.3}",
                preset.cache_key(),
                last.accuracy,
                last.loss
            );
        }
        model
    })
    .expect("model cache");
    assert_eq!(
        model.config, cfg,
        "stale model cache: delete artifacts/models"
    );
    let acc = accuracy(&model, &dataset.test);
    TrainedSentimentModel {
        model,
        dataset,
        accuracy: acc,
    }
}

/// Trains (or loads) the synonym-robust model for the T2 experiments:
/// training sentences are augmented by random synonym substitutions, the
/// stand-in for the certified training of the paper's §6.7 setup.
pub fn t2_model(scale: Scale) -> (TrainedSentimentModel, SynonymSets) {
    let dataset = corpus_dataset(Corpus::Sst, scale);
    let group_syn = SynonymSets::from_groups(&dataset.vocab);
    let path = crate::artifact_dir()
        .join("models")
        .join(format!("t2_{}.json", scale.tag()));
    let cfg = SentimentPreset {
        corpus: Corpus::Sst,
        layers: 2,
        width: Width::Base,
        layer_norm: LayerNormKind::NoStd,
        scale,
    }
    .transformer_config(
        dataset.vocab.len(),
        dataset
            .train
            .iter()
            .map(|(t, _)| t.len())
            .max()
            .unwrap_or(16),
    );
    let model: TransformerClassifier = deept_nn::io::load_or_build(&path, || {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let mut model = TransformerClassifier::new(cfg.clone(), &mut rng);
        // Synonym-augmented training set (robust-training stand-in).
        let mut augmented = dataset.train.clone();
        for _ in 0..2 {
            for (tokens, label) in dataset.train.iter() {
                let mut t = tokens.clone();
                for tok in t.iter_mut() {
                    let syn = group_syn.of(*tok);
                    if !syn.is_empty() && rng.gen_bool(0.5) {
                        *tok = syn[rng.gen_range(0..syn.len())];
                    }
                }
                augmented.push((t, *label));
            }
        }
        deept_telemetry::info!("models", "training t2_{} (augmented ×3)…", scale.tag());
        train(
            &mut model,
            &augmented,
            TrainConfig {
                epochs: 6,
                batch_size: 16,
                lr: 2e-3,
            },
            &mut rng,
        );
        // Counter-fit the learned embeddings toward the planted synonym
        // groups (the paper uses counter-fitted word vectors, ref. [40]),
        // fine-tune so the classifier adapts, then counter-fit once more.
        deept_data::synonyms::counter_fit(&mut model.token_embed, &dataset.vocab, 0.9);
        train(
            &mut model,
            &augmented,
            TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 1e-3,
            },
            &mut rng,
        );
        deept_data::synonyms::counter_fit(&mut model.token_embed, &dataset.vocab, 0.95);
        model
    })
    .expect("model cache");
    let acc = accuracy(&model, &dataset.test);
    // Attack-style synonyms: nearest neighbours in the *learned*
    // (counter-fitted) embedding space, as in the paper's reference [1],
    // with the distance threshold set adaptively to capture typical
    // within-group spread.
    let mut within = Vec::new();
    for g in 0..dataset.vocab.num_groups() {
        let members = dataset.vocab.group_members(g);
        for w in members.windows(2) {
            within.push(deept_tensor::l2_norm(&deept_tensor::vec_sub(
                model.token_embed.row(w[0]),
                model.token_embed.row(w[1]),
            )));
        }
    }
    within.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let tau = within.get(within.len() * 9 / 10).copied().unwrap_or(0.5) * 1.5;
    let knn = SynonymSets::from_embeddings(&model.token_embed, 6, tau);
    (
        TrainedSentimentModel {
            model,
            dataset,
            accuracy: acc,
        },
        knn,
    )
}

/// Trains (or loads) the Appendix A.2 MLP on binary digit-like images. At
/// full scale this uses the paper's hidden sizes 10-50-10 on 8×8 inputs;
/// quick mode shrinks the net so the complete LP-based verifier finishes in
/// seconds per query.
pub fn a2_mlp(scale: Scale) -> (Mlp, Vec<(Vec<f64>, usize)>) {
    let side = if scale == Scale::Quick { 4 } else { 8 };
    let spec = deept_data::images::binary_spec(side, if scale == Scale::Quick { 60 } else { 150 });
    let data = deept_data::images::generate(spec, &mut ChaCha8Rng::seed_from_u64(404));
    let dims: Vec<usize> = if scale == Scale::Quick {
        vec![16, 10, 20, 10, 2]
    } else {
        vec![64, 10, 50, 10, 2]
    };
    let path = crate::artifact_dir()
        .join("models")
        .join(format!("a2_mlp_{}.json", scale.tag()));
    let mlp: Mlp = deept_nn::io::load_or_build(&path, || {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut mlp = Mlp::new(&dims, &mut rng);
        deept_telemetry::info!("models", "training a2_mlp_{}…", scale.tag());
        train(
            &mut mlp,
            &data,
            TrainConfig {
                epochs: 30,
                batch_size: 16,
                lr: 3e-3,
            },
            &mut rng,
        );
        mlp
    })
    .expect("model cache");
    (mlp, data)
}

/// Trains (or loads) the Appendix A.3 Vision Transformer on 10-class
/// digit-like images.
pub fn a3_vit(scale: Scale) -> (VisionTransformer, Vec<(Vec<f64>, usize)>) {
    let spec = deept_data::images::digits_spec(16, if scale == Scale::Quick { 25 } else { 60 });
    let data = deept_data::images::generate(spec, &mut ChaCha8Rng::seed_from_u64(505));
    let path = crate::artifact_dir()
        .join("models")
        .join(format!("a3_vit_{}.json", scale.tag()));
    let vit: VisionTransformer = deept_nn::io::load_or_build(&path, || {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut vit = VisionTransformer::new(
            TransformerConfig {
                vocab_size: 0,
                max_len: 16,
                embed_dim: 16,
                num_heads: 4,
                hidden_dim: 32,
                num_layers: 1,
                num_classes: 10,
                layer_norm: LayerNormKind::NoStd,
            },
            PatchConfig {
                image_h: 16,
                image_w: 16,
                patch: 4,
            },
            &mut rng,
        );
        deept_telemetry::info!("models", "training a3_vit_{}…", scale.tag());
        train(
            &mut vit,
            &data,
            TrainConfig {
                epochs: 12,
                batch_size: 16,
                lr: 2e-3,
            },
            &mut rng,
        );
        vit
    })
    .expect("model cache");
    (vit, data)
}

/// Picks evaluation sentences: correctly classified test examples with
/// lengths within `max_len`, as the paper does (§6.2).
pub fn eval_sentences(
    trained: &TrainedSentimentModel,
    count: usize,
    max_len: usize,
) -> Vec<(Vec<usize>, usize)> {
    trained
        .dataset
        .test
        .iter()
        .filter(|(t, l)| t.len() <= max_len && trained.model.predict(t) == *l)
        .take(count)
        .cloned()
        .collect()
}
