//! Complete robustness verification of small ReLU MLPs — the GeoCert-role
//! baseline of Appendix A.2 (see DESIGN.md, substitution 5).
//!
//! GeoCert computes exact pointwise robustness by geometric search over the
//! union of activation polytopes. We obtain the same *completeness*
//! guarantee with branch-and-bound over ReLU activation states:
//!
//! 1. at each node, a linear program (triangle relaxation for unstable
//!    neurons, exact constraints for fixed ones) lower-bounds the
//!    classification margin over an ℓ∞ box;
//! 2. a positive bound proves the subtree; otherwise the LP optimizer is
//!    replayed through the concrete network to look for a real
//!    counterexample, and the widest unstable neuron is split.
//!
//! With every neuron fixed the LP is exact, so the procedure is complete
//! (up to the node budget). The paper's GeoCert comparison uses ℓ2 balls;
//! our complete search is over ℓ∞ boxes — polyhedral, hence LP-expressible —
//! and the A.2 reproduction compares both verifiers on ℓ∞ (documented in
//! DESIGN.md/EXPERIMENTS.md).

use deept_core::{PNorm, Zonotope};
use deept_lp::{Constraint, Problem, Rel, Solution};
use deept_nn::Mlp;
use deept_tensor::Matrix;
use deept_verifier::Deadline;

/// Activation status of a hidden neuron at a branch-and-bound node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Sign undetermined: triangle relaxation.
    Unstable,
    /// Fixed non-negative pre-activation (by bounds or by split).
    Active,
    /// Fixed non-positive pre-activation.
    Inactive,
}

/// Branch-and-bound configuration.
///
/// The search is bounded by the workspace-wide cooperative [`Deadline`]
/// instead of an ad-hoc node cap, so it follows the same timeout semantics
/// as `deept-serve`: the deadline is an *absolute* cut-off polled between
/// nodes, shared by every query run under this config (construct a fresh
/// config per query for per-query budgets). With [`Deadline::none`] the
/// search runs to exhaustion — it terminates, since every split fixes one
/// ReLU for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BnbConfig {
    /// Cooperative wall-clock budget; defaults to no limit.
    pub deadline: Deadline,
}

impl BnbConfig {
    /// A config whose searches stop at `deadline`.
    pub fn with_deadline(deadline: Deadline) -> Self {
        BnbConfig { deadline }
    }
}

/// Outcome of a complete verification query.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every point of the region classifies as the true label.
    Robust,
    /// A concrete counterexample was found.
    Falsified {
        /// The adversarial input.
        input: Vec<f64>,
    },
    /// The deadline expired before deciding. The bound is still sound: it
    /// is the minimum over proven-subtree margins and the inherited LP
    /// bounds of the subtrees left open (a child polytope is a subset of
    /// its parent's, so the parent's LP margin bounds every descendant).
    Unknown {
        /// Best sound margin lower bound established before the timeout
        /// (`−∞` if the root was never evaluated).
        lower_bound: f64,
    },
}

/// Interval bounds of all pre-activations given the current statuses.
fn preact_bounds(
    mlp: &Mlp,
    x0: &[f64],
    radius: f64,
    statuses: &[Vec<Status>],
) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut lo: Vec<f64> = x0.iter().map(|&v| v - radius).collect();
    let mut hi: Vec<f64> = x0.iter().map(|&v| v + radius).collect();
    let mut out = Vec::new();
    for (li, (w, b)) in mlp.weights.iter().zip(&mlp.biases).enumerate() {
        let mut pl = vec![0.0; w.cols()];
        let mut ph = vec![0.0; w.cols()];
        for j in 0..w.cols() {
            let mut l = b.at(0, j);
            let mut h = b.at(0, j);
            for k in 0..w.rows() {
                let c = w.at(k, j);
                if c >= 0.0 {
                    l += c * lo[k];
                    h += c * hi[k];
                } else {
                    l += c * hi[k];
                    h += c * lo[k];
                }
            }
            pl[j] = l;
            ph[j] = h;
        }
        out.push((pl.clone(), ph.clone()));
        if li + 1 < mlp.weights.len() {
            // Post-activation bounds under the node's statuses.
            lo = pl
                .iter()
                .zip(&statuses[li])
                .map(|(&l, &s)| match s {
                    Status::Inactive => 0.0,
                    _ => l.max(0.0),
                })
                .collect();
            hi = ph
                .iter()
                .zip(&statuses[li])
                .map(|(&h, &s)| match s {
                    Status::Inactive => 0.0,
                    _ => h.max(0.0),
                })
                .collect();
        }
    }
    out
}

/// LP margin lower bound (and its optimizer's input part) for one
/// adversarial class at a node. Returns `None` if the node's constraint
/// system is infeasible (the split region is empty — subtree vacuously
/// robust).
#[allow(clippy::too_many_arguments)]
fn node_margin(
    mlp: &Mlp,
    x0: &[f64],
    radius: f64,
    true_label: usize,
    adv_label: usize,
    statuses: &[Vec<Status>],
    bounds: &[(Vec<f64>, Vec<f64>)],
) -> Option<(f64, Vec<f64>)> {
    let d = mlp.input_dim();
    let hidden_layers = mlp.num_layers() - 1;
    // Variables: x (d), then post-activations of each hidden layer.
    let mut var_bounds: Vec<(f64, f64)> = x0.iter().map(|&v| (v - radius, v + radius)).collect();
    let mut layer_offsets = Vec::new();
    for li in 0..hidden_layers {
        layer_offsets.push(var_bounds.len());
        let (_, ph) = &bounds[li];
        for (j, &h) in ph.iter().enumerate() {
            let cap = match statuses[li][j] {
                Status::Inactive => 0.0,
                _ => h.max(0.0),
            };
            var_bounds.push((0.0, cap));
        }
    }
    let n_vars = var_bounds.len();
    let mut constraints = Vec::new();

    // Per-neuron constraints; pre_j = w_col_j · prev + b_j where prev is x
    // (layer 0) or the previous layer's post-activation variables.
    for li in 0..hidden_layers {
        let w = &mlp.weights[li];
        let b = &mlp.biases[li];
        let prev_off = if li == 0 { 0 } else { layer_offsets[li - 1] };
        let prev_dim = w.rows();
        let off = layer_offsets[li];
        let (pl, ph) = &bounds[li];
        for j in 0..w.cols() {
            let mut pre = vec![0.0; n_vars];
            for k in 0..prev_dim {
                pre[prev_off + k] = w.at(k, j);
            }
            let bj = b.at(0, j);
            match statuses[li][j] {
                Status::Active => {
                    // y = pre, and pre ≥ 0.
                    let mut eq = pre.clone();
                    eq[off + j] -= 1.0;
                    constraints.push(Constraint::new(eq, Rel::Eq, -bj));
                    constraints.push(Constraint::new(pre, Rel::Ge, -bj));
                }
                Status::Inactive => {
                    // y = 0 (via bounds) and pre ≤ 0.
                    constraints.push(Constraint::new(pre, Rel::Le, -bj));
                }
                Status::Unstable => {
                    let (l, u) = (pl[j], ph[j]);
                    debug_assert!(l < 0.0 && u > 0.0);
                    // y ≥ pre  ⇔  y − pre ≥ 0.
                    let mut ge = pre.clone();
                    for v in ge.iter_mut() {
                        *v = -*v;
                    }
                    ge[off + j] += 1.0;
                    constraints.push(Constraint::new(ge, Rel::Ge, bj));
                    // y ≤ λ (pre − l): y − λ·pre ≤ λ(b_j − l).
                    let lam = u / (u - l);
                    let mut le = pre.clone();
                    for v in le.iter_mut() {
                        *v *= -lam;
                    }
                    le[off + j] += 1.0;
                    constraints.push(Constraint::new(le, Rel::Le, lam * (bj - l)));
                }
            }
        }
    }

    // Objective: minimize logit_t − logit_f, affine in the last hidden
    // layer's variables (or directly in x for a linear model).
    let wl = mlp.weights.last().expect("non-empty");
    let bl = mlp.biases.last().expect("non-empty");
    let prev_off = if hidden_layers == 0 {
        0
    } else {
        layer_offsets[hidden_layers - 1]
    };
    let mut objective = vec![0.0; n_vars];
    for k in 0..wl.rows() {
        objective[prev_off + k] = wl.at(k, true_label) - wl.at(k, adv_label);
    }
    let bias_term = bl.at(0, true_label) - bl.at(0, adv_label);

    match deept_lp::solve(&Problem {
        objective,
        constraints,
        bounds: var_bounds,
    }) {
        Solution::Optimal { x, value } => Some((value + bias_term, x[..d].to_vec())),
        Solution::Infeasible => None,
    }
}

/// Complete verification of `mlp` on the ℓ∞ box of `radius` around `x0`.
///
/// Polls `cfg.deadline` between branch-and-bound nodes; on expiry it
/// returns [`Verdict::Unknown`] carrying the best sound margin lower bound
/// found so far instead of discarding the work.
pub fn verify_linf(
    mlp: &Mlp,
    x0: &[f64],
    radius: f64,
    true_label: usize,
    cfg: &BnbConfig,
) -> Verdict {
    let hidden_layers = mlp.num_layers() - 1;
    let hidden_dims: Vec<usize> = (0..hidden_layers).map(|l| mlp.weights[l].cols()).collect();
    let root: Vec<Vec<Status>> = hidden_dims
        .iter()
        .map(|&d| vec![Status::Unstable; d])
        .collect();
    // Each stack entry carries the sound margin lower bound inherited from
    // its parent's LP (−∞ at the root), so a timeout can report the best
    // bound established for everything still open.
    let mut stack = vec![(root, f64::NEG_INFINITY)];
    let mut proven_min = f64::INFINITY;
    while let Some((mut statuses, inherited)) = stack.pop() {
        if cfg.deadline.expired() {
            let open = stack.iter().map(|(_, b)| *b).fold(inherited, f64::min);
            return Verdict::Unknown {
                lower_bound: proven_min.min(open),
            };
        }
        let bounds = preact_bounds(mlp, x0, radius, &statuses);
        // Fix neurons whose interval sign is already determined.
        for li in 0..hidden_layers {
            for (j, st) in statuses[li].iter_mut().enumerate().take(hidden_dims[li]) {
                if *st == Status::Unstable {
                    let (l, u) = (bounds[li].0[j], bounds[li].1[j]);
                    if l >= 0.0 {
                        *st = Status::Active;
                    } else if u <= 0.0 {
                        *st = Status::Inactive;
                    }
                }
            }
        }
        let bounds = preact_bounds(mlp, x0, radius, &statuses);
        let mut worst: Option<(f64, Vec<f64>)> = None;
        let mut feasible = false;
        for adv in 0..mlp.output_dim() {
            if adv == true_label {
                continue;
            }
            if let Some((margin, xin)) =
                node_margin(mlp, x0, radius, true_label, adv, &statuses, &bounds)
            {
                feasible = true;
                if worst.as_ref().is_none_or(|(m, _)| margin < *m) {
                    worst = Some((margin, xin));
                }
            }
        }
        if !feasible {
            continue; // split region empty: subtree vacuously safe
        }
        let (margin, xin) = worst.expect("feasible node has a margin");
        let margin = margin.max(inherited);
        if margin > 0.0 {
            proven_min = proven_min.min(margin);
            continue; // subtree verified
        }
        // Candidate counterexample from the LP optimizer.
        let clipped: Vec<f64> = xin
            .iter()
            .zip(x0)
            .map(|(&v, &c)| v.clamp(c - radius, c + radius))
            .collect();
        if mlp.predict(&clipped) != true_label {
            return Verdict::Falsified { input: clipped };
        }
        // Branch on the widest unstable neuron.
        let mut pick = None;
        let mut best_width = 0.0;
        for li in 0..hidden_layers {
            for (j, &st) in statuses[li].iter().enumerate().take(hidden_dims[li]) {
                if st == Status::Unstable {
                    let w = bounds[li].1[j] - bounds[li].0[j];
                    if w > best_width {
                        best_width = w;
                        pick = Some((li, j));
                    }
                }
            }
        }
        match pick {
            Some((li, j)) => {
                let mut a = statuses.clone();
                a[li][j] = Status::Active;
                let mut b = statuses;
                b[li][j] = Status::Inactive;
                stack.push((a, margin));
                stack.push((b, margin));
            }
            None => {
                // All neurons fixed: the LP is exact, so a non-positive
                // margin pins an actual boundary point; numerically it may
                // classify either way. If it does not flip, treat the leaf
                // as robust (margin 0 boundary).
                if mlp.predict(&clipped) != true_label {
                    return Verdict::Falsified { input: clipped };
                }
                proven_min = proven_min.min(margin);
            }
        }
    }
    Verdict::Robust
}

/// Largest ℓ∞ radius certified robust by the complete verifier, via binary
/// search.
///
/// If `cfg.deadline` expires mid-search, every remaining query returns
/// [`Verdict::Unknown`] (treated as not-robust), so the search collapses
/// quickly and the result is the largest radius *proven* before the
/// timeout — a sound lower bound on the true robust radius.
pub fn max_robust_radius_linf(
    mlp: &Mlp,
    x0: &[f64],
    true_label: usize,
    cfg: &BnbConfig,
    iters: usize,
) -> f64 {
    bracketed_radius(
        |r| matches!(verify_linf(mlp, x0, r, true_label, cfg), Verdict::Robust),
        0.01,
        iters,
    )
}

// A tiny local bracketing binary search, duplicated here to avoid a
// dependency cycle with `deept-verifier`.
fn bracketed_radius(mut verify: impl FnMut(f64) -> bool, start: f64, iters: usize) -> f64 {
    if !verify(0.0) {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0, start);
    let mut grow = 0;
    while verify(hi) && grow < 30 {
        lo = hi;
        hi *= 2.0;
        grow += 1;
    }
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if verify(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Incomplete zonotope (DeepT-style) margin for the same MLP and ℓp ball —
/// the DeepT side of the Table 10 comparison.
pub fn zonotope_margin(mlp: &Mlp, x0: &[f64], radius: f64, p: PNorm, true_label: usize) -> f64 {
    let center = Matrix::row_vector(x0.to_vec());
    let mut z = Zonotope::from_lp_ball(&center, radius, p, &[0]);
    let n = mlp.num_layers();
    for (i, (w, b)) in mlp.weights.iter().zip(&mlp.biases).enumerate() {
        z = z.matmul_right(w).add_row_bias(b.row(0));
        if i + 1 < n {
            z = z.relu();
        }
    }
    let c = mlp.output_dim();
    let mut worst = f64::INFINITY;
    for adv in 0..c {
        if adv == true_label {
            continue;
        }
        let mut l = Matrix::zeros(1, c);
        l.set(0, true_label, 1.0);
        l.set(0, adv, -1.0);
        worst = worst.min(z.linear_vars(&l, 1, 1).bounds_of(0).0);
    }
    worst
}

/// Largest ℓp radius certified by the zonotope verifier on the MLP.
pub fn zonotope_radius(mlp: &Mlp, x0: &[f64], p: PNorm, true_label: usize, iters: usize) -> f64 {
    bracketed_radius(
        |r| zonotope_margin(mlp, x0, r, p, true_label) > 0.0,
        0.01,
        iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn trained_toy_mlp() -> (Mlp, Vec<(Vec<f64>, usize)>) {
        use deept_nn::train::{train, TrainConfig};
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 6, 2], &mut rng);
        let mut data = Vec::new();
        for _ in 0..200 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            data.push((vec![x, y], usize::from(x + 0.5 * y > 0.0)));
        }
        train(
            &mut mlp,
            &data,
            TrainConfig {
                epochs: 30,
                batch_size: 16,
                lr: 0.01,
            },
            &mut rng,
        );
        (mlp, data)
    }

    #[test]
    fn complete_verifier_certified_box_has_no_flips() {
        let (mlp, _) = trained_toy_mlp();
        let x0 = vec![0.6, 0.4];
        let label = mlp.predict(&x0);
        let cfg = BnbConfig::default();
        let r = max_robust_radius_linf(&mlp, &x0, label, &cfg, 24);
        assert!(r > 0.0, "a confidently classified point must have r > 0");
        let steps = 12;
        for i in 0..=steps {
            for j in 0..=steps {
                let dx = -r + 2.0 * r * i as f64 / steps as f64;
                let dy = -r + 2.0 * r * j as f64 / steps as f64;
                let p = vec![x0[0] + dx * 0.999, x0[1] + dy * 0.999];
                assert_eq!(mlp.predict(&p), label, "flip inside certified box at {p:?}");
            }
        }
    }

    #[test]
    fn complete_beats_or_matches_zonotope() {
        let (mlp, data) = trained_toy_mlp();
        for (x0, _) in data.iter().take(5) {
            let label = mlp.predict(x0);
            let cfg = BnbConfig::default();
            let complete = max_robust_radius_linf(&mlp, x0, label, &cfg, 16);
            let zono = zonotope_radius(&mlp, x0, PNorm::Linf, label, 16);
            assert!(
                complete >= zono - 1e-6,
                "complete {complete} < zonotope {zono} — incomplete method overshot"
            );
        }
    }

    #[test]
    fn misclassified_point_has_zero_radius() {
        let (mlp, data) = trained_toy_mlp();
        if let Some((x, y)) = data.iter().find(|(x, y)| mlp.predict(x) != *y) {
            let cfg = BnbConfig::default();
            assert_eq!(max_robust_radius_linf(&mlp, x, *y, &cfg, 10), 0.0);
        }
    }

    #[test]
    fn falsification_finds_real_attacks() {
        let (mlp, _) = trained_toy_mlp();
        let x0 = vec![0.05, 0.0]; // near the decision boundary x + y/2 = 0
        let label = mlp.predict(&x0);
        let verdict = verify_linf(&mlp, &x0, 0.5, label, &BnbConfig::default());
        match verdict {
            Verdict::Falsified { input } => assert_ne!(mlp.predict(&input), label),
            Verdict::Robust => panic!("0.5 box around a boundary point cannot be robust"),
            Verdict::Unknown { .. } => panic!("no deadline was set — the search must decide"),
        }
    }

    #[test]
    fn expired_deadline_returns_sound_partial_bound() {
        use rand::Rng;
        let (mlp, _) = trained_toy_mlp();
        let x0 = vec![0.6, 0.4];
        let label = mlp.predict(&x0);
        let radius = 0.05;
        let cfg = BnbConfig::with_deadline(Deadline::at(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        ));
        match verify_linf(&mlp, &x0, radius, label, &cfg) {
            Verdict::Unknown { lower_bound } => {
                // The reported bound must lower-bound every concrete margin
                // in the box (trivially true for −∞, which is the expected
                // value when the root was never evaluated).
                let mut rng = ChaCha8Rng::seed_from_u64(17);
                for _ in 0..200 {
                    let p: Vec<f64> = x0
                        .iter()
                        .map(|&c| c + rng.gen_range(-radius..=radius))
                        .collect();
                    let logits = mlp.logits(&p);
                    let m = logits.at(0, label) - logits.at(0, 1 - label);
                    assert!(m >= lower_bound - 1e-9, "margin {m} below {lower_bound}");
                }
            }
            other => panic!("expired deadline must return Unknown, got {other:?}"),
        }
    }

    #[test]
    fn no_deadline_search_is_exhaustive_and_unchanged() {
        let (mlp, _) = trained_toy_mlp();
        let x0 = vec![0.6, 0.4];
        let label = mlp.predict(&x0);
        let r = max_robust_radius_linf(&mlp, &x0, label, &BnbConfig::default(), 24);
        assert!(r > 0.0);
        // The verdict at a clearly-safe radius must be Robust, never
        // Unknown, when no deadline is configured.
        assert_eq!(
            verify_linf(&mlp, &x0, r * 0.5, label, &BnbConfig::default()),
            Verdict::Robust
        );
    }

    #[test]
    fn zonotope_margin_is_sound_on_samples() {
        use rand::Rng;
        let (mlp, _) = trained_toy_mlp();
        let x0 = vec![0.5, 0.5];
        let label = mlp.predict(&x0);
        let r = 0.1;
        let m = zonotope_margin(&mlp, &x0, r, PNorm::L2, label);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..300 {
            let mut d: [f64; 2] = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            let n = (d[0] * d[0] + d[1] * d[1]).sqrt();
            if n > 1.0 {
                d[0] /= n;
                d[1] /= n;
            }
            let p = vec![x0[0] + r * d[0], x0[1] + r * d[1]];
            let logits = mlp.logits(&p);
            let true_margin = logits.at(0, label) - logits.at(0, 1 - label);
            assert!(true_margin >= m - 1e-9, "margin bound violated");
        }
    }
}
