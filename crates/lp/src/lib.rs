//! A dense two-phase simplex linear-programming solver.
//!
//! This is the substrate for the complete robustness verifier
//! (`deept-geocert`), which plays the role of GeoCert in the Appendix A.2
//! comparison: it bounds output margins of ReLU networks subject to box and
//! triangle-relaxation constraints.
//!
//! Scope: dense problems with a few hundred variables/constraints, finite
//! variable bounds, minimization objective. Bland's rule guards against
//! cycling; no effort is spent on sparse or revised-simplex performance —
//! the verifier's LPs are small.
//!
//! # Example
//!
//! ```
//! use deept_lp::{Constraint, Problem, Rel, Solution};
//!
//! // min −x − y  s.t.  x + y ≤ 1,  0 ≤ x,y ≤ 1.
//! let p = Problem {
//!     objective: vec![-1.0, -1.0],
//!     constraints: vec![Constraint::new(vec![1.0, 1.0], Rel::Le, 1.0)],
//!     bounds: vec![(0.0, 1.0), (0.0, 1.0)],
//! };
//! match deept_lp::solve(&p) {
//!     Solution::Optimal { value, .. } => assert!((value + 1.0).abs() < 1e-9),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// One linear constraint `coeffs · x REL rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficients, one per problem variable.
    pub coeffs: Vec<f64>,
    /// Relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, rel: Rel, rhs: f64) -> Self {
        Constraint { coeffs, rel, rhs }
    }
}

/// A minimization LP with finite box bounds on every variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Objective coefficients (minimized).
    pub objective: Vec<f64>,
    /// Linear constraints.
    pub constraints: Vec<Constraint>,
    /// Per-variable `(lower, upper)` bounds; must be finite with
    /// `lower ≤ upper`.
    pub bounds: Vec<(f64, f64)>,
}

/// The outcome of [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum Solution {
    /// An optimal vertex.
    Optimal {
        /// Optimal assignment.
        x: Vec<f64>,
        /// Objective value at `x`.
        value: f64,
    },
    /// The constraint system has no feasible point.
    Infeasible,
}

const EPS: f64 = 1e-9;

/// Solves the problem with two-phase dense simplex.
///
/// Because every variable is box-bounded, the problem is never unbounded.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or a bound is infinite/inverted.
pub fn solve(p: &Problem) -> Solution {
    let n = p.objective.len();
    assert_eq!(p.bounds.len(), n, "bounds/objective length mismatch");
    for (i, &(l, u)) in p.bounds.iter().enumerate() {
        assert!(
            l.is_finite() && u.is_finite() && l <= u,
            "variable {i} has invalid bounds [{l}, {u}]"
        );
    }
    for c in &p.constraints {
        assert_eq!(c.coeffs.len(), n, "constraint arity mismatch");
    }

    // Shift x = l + x' so x' ≥ 0, and add upper-bound rows x' ≤ u − l.
    let mut rows: Vec<(Vec<f64>, Rel, f64)> = Vec::new();
    for c in &p.constraints {
        let shift: f64 = c
            .coeffs
            .iter()
            .zip(&p.bounds)
            .map(|(&a, &(l, _))| a * l)
            .sum();
        rows.push((c.coeffs.clone(), c.rel, c.rhs - shift));
    }
    for (i, &(l, u)) in p.bounds.iter().enumerate() {
        let mut coeffs = vec![0.0; n];
        coeffs[i] = 1.0;
        if u - l > 0.0 {
            rows.push((coeffs, Rel::Le, u - l));
        } else {
            rows.push((coeffs, Rel::Eq, 0.0));
        }
    }

    // Normalize rhs ≥ 0.
    for row in &mut rows {
        if row.2 < 0.0 {
            for a in &mut row.0 {
                *a = -*a;
            }
            row.2 = -row.2;
            row.1 = match row.1 {
                Rel::Le => Rel::Ge,
                Rel::Ge => Rel::Le,
                Rel::Eq => Rel::Eq,
            };
        }
    }
    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.1, Rel::Le | Rel::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.1, Rel::Ge | Rel::Eq))
        .count();
    let cols = n + n_slack + n_art;
    let mut tab = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut s_idx = n;
    let mut a_idx = n + n_slack;
    let mut artificials = Vec::new();
    for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        tab[r][..n].copy_from_slice(coeffs);
        tab[r][cols] = *rhs;
        match rel {
            Rel::Le => {
                tab[r][s_idx] = 1.0;
                basis[r] = s_idx;
                s_idx += 1;
            }
            Rel::Ge => {
                tab[r][s_idx] = -1.0;
                s_idx += 1;
                tab[r][a_idx] = 1.0;
                basis[r] = a_idx;
                artificials.push(a_idx);
                a_idx += 1;
            }
            Rel::Eq => {
                tab[r][a_idx] = 1.0;
                basis[r] = a_idx;
                artificials.push(a_idx);
                a_idx += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials.
    if !artificials.is_empty() {
        let mut cost = vec![0.0; cols];
        for &a in &artificials {
            cost[a] = 1.0;
        }
        let phase1 = run_simplex(&mut tab, &mut basis, &cost, cols);
        if phase1 > 1e-7 {
            return Solution::Infeasible;
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for r in 0..m {
            if artificials.contains(&basis[r]) {
                if let Some(j) = (0..n + n_slack).find(|&j| tab[r][j].abs() > EPS) {
                    pivot(&mut tab, &mut basis, r, j, cols);
                }
            }
        }
        // Erase artificial columns so phase 2 cannot re-enter them.
        for row in tab.iter_mut() {
            for &a in &artificials {
                row[a] = 0.0;
            }
        }
    }

    // Phase 2: minimize the real objective.
    let mut cost = vec![0.0; cols];
    cost[..n].copy_from_slice(&p.objective);
    let _ = run_simplex(&mut tab, &mut basis, &cost, cols);

    let mut x_shift = vec![0.0; cols];
    for (r, &b) in basis.iter().enumerate() {
        x_shift[b] = tab[r][cols];
    }
    let x: Vec<f64> = (0..n).map(|i| x_shift[i] + p.bounds[i].0).collect();
    let value: f64 = p.objective.iter().zip(&x).map(|(&c, &v)| c * v).sum();
    Solution::Optimal { x, value }
}

/// Runs primal simplex (minimization) on the tableau with Bland's rule;
/// returns the final objective value of `cost`.
fn run_simplex(tab: &mut [Vec<f64>], basis: &mut [usize], cost: &[f64], cols: usize) -> f64 {
    let m = tab.len();
    let mut iter = 0usize;
    let mut in_basis = vec![false; cols];
    loop {
        iter += 1;
        assert!(iter < 200_000, "simplex iteration limit exceeded");
        for b in in_basis.iter_mut() {
            *b = false;
        }
        for &b in basis.iter() {
            in_basis[b] = true;
        }
        let cb: Vec<f64> = basis.iter().map(|&b| cost[b]).collect();
        // Bland's rule: enter the smallest-index column with negative
        // reduced cost.
        let mut entering = None;
        for j in 0..cols {
            if in_basis[j] {
                continue;
            }
            let mut rc = cost[j];
            for r in 0..m {
                if cb[r] != 0.0 {
                    rc -= cb[r] * tab[r][j];
                }
            }
            if rc < -EPS {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            let mut obj = 0.0;
            for r in 0..m {
                obj += cb[r] * tab[r][cols];
            }
            return obj;
        };
        // Ratio test (Bland tie-break on basis index).
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            if tab[r][j] > EPS {
                let ratio = tab[r][cols] / tab[r][j];
                match leave {
                    None => leave = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - EPS || (ratio < lratio + EPS && basis[r] < basis[lr]) {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = leave else {
            // Unbounded direction: impossible with box bounds, but guard by
            // reporting the current objective.
            let mut obj = 0.0;
            for rr in 0..m {
                obj += cb[rr] * tab[rr][cols];
            }
            return obj;
        };
        pivot(tab, basis, r, j, cols);
    }
}

fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], r: usize, j: usize, cols: usize) {
    let pv = tab[r][j];
    debug_assert!(pv.abs() > EPS, "pivot on ~zero element");
    for v in tab[r].iter_mut() {
        *v /= pv;
    }
    for rr in 0..tab.len() {
        if rr == r {
            continue;
        }
        let f = tab[rr][j];
        if f == 0.0 {
            continue;
        }
        let (pivot_row, other_row) = if rr < r {
            let (a, b) = tab.split_at_mut(r);
            (&b[0], &mut a[rr])
        } else {
            let (a, b) = tab.split_at_mut(rr);
            (&a[r], &mut b[0])
        };
        for c in 0..=cols {
            other_row[c] -= f * pivot_row[c];
        }
    }
    basis[r] = j;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(p: &Problem) -> (Vec<f64>, f64) {
        match solve(p) {
            Solution::Optimal { x, value } => (x, value),
            Solution::Infeasible => panic!("unexpectedly infeasible"),
        }
    }

    #[test]
    fn simple_box_minimum() {
        // min x − y over the unit box: x = 0, y = 1.
        let p = Problem {
            objective: vec![1.0, -1.0],
            constraints: vec![],
            bounds: vec![(0.0, 1.0), (0.0, 1.0)],
        };
        let (x, v) = optimal(&p);
        assert!((v + 1.0).abs() < 1e-9);
        assert!((x[0] - 0.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classic_lp() {
        // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (min of negation).
        let p = Problem {
            objective: vec![-3.0, -5.0],
            constraints: vec![
                Constraint::new(vec![1.0, 0.0], Rel::Le, 4.0),
                Constraint::new(vec![0.0, 2.0], Rel::Le, 12.0),
                Constraint::new(vec![3.0, 2.0], Rel::Le, 18.0),
            ],
            bounds: vec![(0.0, 100.0), (0.0, 100.0)],
        };
        let (x, v) = optimal(&p);
        assert!((v + 36.0).abs() < 1e-7, "value {v}");
        assert!((x[0] - 2.0).abs() < 1e-7 && (x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x − y = 0 → x = y = 1.
        let p = Problem {
            objective: vec![1.0, 1.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Rel::Eq, 2.0),
                Constraint::new(vec![1.0, -1.0], Rel::Eq, 0.0),
            ],
            bounds: vec![(-10.0, 10.0), (-10.0, 10.0)],
        };
        let (x, v) = optimal(&p);
        assert!((v - 2.0).abs() < 1e-7);
        assert!((x[0] - 1.0).abs() < 1e-7 && (x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints_and_negative_bounds() {
        // min y s.t. y ≥ x + 1, y ≥ −x + 1, x ∈ [−5, 5] → y = 1.
        let p = Problem {
            objective: vec![0.0, 1.0],
            constraints: vec![
                Constraint::new(vec![-1.0, 1.0], Rel::Ge, 1.0),
                Constraint::new(vec![1.0, 1.0], Rel::Ge, 1.0),
            ],
            bounds: vec![(-5.0, 5.0), (-100.0, 100.0)],
        };
        let (_, v) = optimal(&p);
        assert!((v - 1.0).abs() < 1e-7, "value {v}");
    }

    #[test]
    fn infeasible_detected() {
        let p = Problem {
            objective: vec![0.0],
            constraints: vec![
                Constraint::new(vec![1.0], Rel::Ge, 5.0),
                Constraint::new(vec![1.0], Rel::Le, 1.0),
            ],
            bounds: vec![(0.0, 10.0)],
        };
        assert_eq!(solve(&p), Solution::Infeasible);
    }

    #[test]
    fn infeasible_via_bounds() {
        let p = Problem {
            objective: vec![1.0],
            constraints: vec![Constraint::new(vec![1.0], Rel::Ge, 5.0)],
            bounds: vec![(0.0, 1.0)],
        };
        assert_eq!(solve(&p), Solution::Infeasible);
    }

    #[test]
    fn degenerate_fixed_variable() {
        let p = Problem {
            objective: vec![1.0, 1.0],
            constraints: vec![Constraint::new(vec![1.0, 1.0], Rel::Ge, 2.0)],
            bounds: vec![(1.5, 1.5), (0.0, 10.0)],
        };
        let (x, v) = optimal(&p);
        assert!((x[0] - 1.5).abs() < 1e-9);
        assert!((v - 2.0).abs() < 1e-7);
    }

    #[test]
    fn solution_satisfies_constraints_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let n = rng.gen_range(2..6);
            let m = rng.gen_range(1..6);
            let p = Problem {
                objective: (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                constraints: (0..m)
                    .map(|_| {
                        Constraint::new(
                            (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                            [Rel::Le, Rel::Ge][rng.gen_range(0..2)],
                            rng.gen_range(-1.0..1.0),
                        )
                    })
                    .collect(),
                bounds: vec![(-3.0, 3.0); n],
            };
            if let Solution::Optimal { x, value } = solve(&p) {
                for (i, &(l, u)) in p.bounds.iter().enumerate() {
                    assert!(x[i] >= l - 1e-6 && x[i] <= u + 1e-6);
                }
                for c in &p.constraints {
                    let lhs: f64 = c.coeffs.iter().zip(&x).map(|(&a, &v)| a * v).sum();
                    match c.rel {
                        Rel::Le => assert!(lhs <= c.rhs + 1e-6, "{lhs} > {}", c.rhs),
                        Rel::Ge => assert!(lhs >= c.rhs - 1e-6, "{lhs} < {}", c.rhs),
                        Rel::Eq => assert!((lhs - c.rhs).abs() < 1e-6),
                    }
                }
                // Optimality spot check: random feasible candidates are no
                // better.
                for _ in 0..20 {
                    let cand: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
                    let feasible = p.constraints.iter().all(|c| {
                        let lhs: f64 = c.coeffs.iter().zip(&cand).map(|(&a, &v)| a * v).sum();
                        match c.rel {
                            Rel::Le => lhs <= c.rhs,
                            Rel::Ge => lhs >= c.rhs,
                            Rel::Eq => (lhs - c.rhs).abs() < 1e-9,
                        }
                    });
                    if feasible {
                        let cv: f64 = p.objective.iter().zip(&cand).map(|(&a, &v)| a * v).sum();
                        assert!(cv >= value - 1e-6, "found better point: {cv} < {value}");
                    }
                }
            }
        }
    }
}
