//! Verification telemetry for DeepT-rs.
//!
//! Three pieces, all dependency-free:
//!
//! * **Probing** ([`Probe`], [`SpanKind`], [`NoopProbe`]) — the hook surface
//!   that `deept-core` and `deept-verifier` are instrumented against. Every
//!   stage of abstract propagation (encoder layers, dot products, softmax,
//!   layer norm, FFN, noise-symbol reductions, radius-search iterations)
//!   enters/exits a span on the probe. The default [`NoopProbe`] makes all
//!   hooks no-ops and disables metric computation, so uninstrumented runs
//!   are unaffected and probed runs are bitwise identical.
//! * **Tracing** ([`TraceCollector`], [`VerificationTrace`]) — a concrete
//!   probe that records nested spans with wall-clock durations and
//!   precision metrics ([`ZonotopeStats`], [`ReduceEvent`], [`RadiusStep`]),
//!   renders hotspot / per-layer width-growth summaries, and serializes the
//!   whole trace to JSON (hand-rolled writer; no serde dependency).
//! * **Logging** ([`info!`], [`debug!`], [`LogLevel`]) — a leveled stderr
//!   logger gated by the `DEEPT_LOG` environment variable, replacing ad-hoc
//!   `eprintln!` progress messages in the bench harness.
//!
//! Server request/cache/deadline counters live in the `deept-metrics`
//! registry (owned by `deept-serve`), not here: this crate stays the
//! dependency-free hook surface that the instrumented crates build
//! against, while `deept-metrics` aggregates the resulting span stream.

#![deny(clippy::print_stdout)]

mod collect;
mod log;
mod probe;
mod trace;

pub use collect::TraceCollector;
pub use log::{log, log_enabled, max_level, LogLevel};
pub use probe::{
    EpsStorageStats, NoopProbe, ParallelStats, Probe, RadiusStep, ReduceEvent, SpanKind,
    ZonotopeStats,
};
pub use trace::{Hotspot, LayerWidthRow, SpanRecord, VerificationTrace};

/// RAII guard that exits a span when dropped, for instrumentation sites
/// with multiple return paths.
///
/// Stats and symbol counts can be set before the guard drops; most call
/// sites instead call [`Probe::span_exit`] manually and this helper exists
/// for early-return-heavy code.
pub struct SpanGuard<'a> {
    probe: &'a dyn Probe,
    kind: SpanKind,
    stats: Option<ZonotopeStats>,
    symbols_created: usize,
}

impl<'a> SpanGuard<'a> {
    /// Enters `kind` on `probe`; the span exits when the guard drops.
    pub fn enter(probe: &'a dyn Probe, kind: SpanKind) -> Self {
        probe.span_enter(kind);
        SpanGuard {
            probe,
            kind,
            stats: None,
            symbols_created: 0,
        }
    }

    /// Records the output-zonotope snapshot to report on exit.
    pub fn set_stats(&mut self, stats: ZonotopeStats) {
        self.stats = Some(stats);
    }

    /// Records the number of fresh ε symbols to report on exit.
    pub fn set_symbols_created(&mut self, n: usize) {
        self.symbols_created = n;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.probe
            .span_exit(self.kind, self.stats, self.symbols_created);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;

    #[test]
    fn guard_exits_on_drop_with_recorded_stats() {
        let c = TraceCollector::new();
        {
            let mut g = SpanGuard::enter(&c, SpanKind::Softmax);
            g.set_symbols_created(5);
            g.set_stats(ZonotopeStats {
                rows: 1,
                cols: 2,
                num_phi: 2,
                num_eps: 7,
                mean_width: 0.5,
                max_width: 1.0,
            });
        }
        let trace = c.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].group, "softmax");
        assert_eq!(trace.spans[0].symbols_created, 5);
        assert_eq!(trace.spans[0].stats.unwrap().num_eps, 7);
        assert_eq!(trace.unbalanced_exits, 0);
    }

    #[test]
    fn guard_exits_on_early_return() {
        fn body(probe: &dyn Probe, bail: bool) -> u32 {
            let _g = SpanGuard::enter(probe, SpanKind::LayerNorm);
            if bail {
                return 0;
            }
            1
        }
        let c = TraceCollector::new();
        body(&c, true);
        body(&c, false);
        let trace = c.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.unbalanced_exits, 0);
    }
}
