//! [`TraceCollector`]: the [`Probe`] implementation that records nested
//! spans with wall-clock timing and assembles a
//! [`VerificationTrace`](crate::VerificationTrace).
//!
//! The collector is internally synchronized (a mutex around a span stack),
//! so a `&TraceCollector` can be handed to the verifier as `&dyn Probe`
//! directly. It observes only — it never feeds anything back into the
//! computation, which is what keeps probed runs bitwise identical to
//! unprobed ones.

use std::sync::Mutex;
use std::time::Instant;

use crate::probe::{
    EpsStorageStats, ParallelStats, Probe, RadiusStep, ReduceEvent, SpanKind, ZonotopeStats,
};
use crate::trace::{SpanRecord, VerificationTrace};

struct OpenSpan {
    kind: SpanKind,
    started: Instant,
    reduce: Vec<ReduceEvent>,
    parallel: Option<ParallelStats>,
    eps_storage: Option<EpsStorageStats>,
    children: Vec<SpanRecord>,
}

struct State {
    started: Instant,
    stack: Vec<OpenSpan>,
    roots: Vec<SpanRecord>,
    radius_steps: Vec<RadiusStep>,
    /// Reductions reported outside any open span.
    orphan_reduce: Vec<ReduceEvent>,
    unbalanced_exits: usize,
}

/// Collects probe callbacks into a structured trace.
pub struct TraceCollector {
    state: Mutex<State>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A fresh collector; the trace clock starts now.
    pub fn new() -> Self {
        TraceCollector {
            state: Mutex::new(State {
                started: Instant::now(),
                stack: Vec::new(),
                roots: Vec::new(),
                radius_steps: Vec::new(),
                orphan_reduce: Vec::new(),
                unbalanced_exits: 0,
            }),
        }
    }

    /// Closes any still-open spans and returns the assembled trace.
    pub fn finish(self) -> VerificationTrace {
        let mut s = self.state.into_inner().unwrap_or_else(|e| e.into_inner());
        // Close dangling spans innermost-first so nesting is preserved.
        while let Some(open) = s.stack.pop() {
            let record = close_span(open, None, 0);
            attach(&mut s.stack, &mut s.roots, record);
        }
        let mut spans = std::mem::take(&mut s.roots);
        // Orphan reductions (reported outside any span) become a synthetic
        // zero-duration reduction span so the data is not lost.
        if !s.orphan_reduce.is_empty() {
            spans.push(SpanRecord {
                label: SpanKind::Reduction.label(),
                group: SpanKind::Reduction.group().to_string(),
                index: None,
                duration_s: 0.0,
                stats: None,
                symbols_created: 0,
                reduce: std::mem::take(&mut s.orphan_reduce),
                parallel: None,
                eps_storage: None,
                children: Vec::new(),
            });
        }
        VerificationTrace {
            meta: Vec::new(),
            total_s: s.started.elapsed().as_secs_f64(),
            spans,
            radius_steps: std::mem::take(&mut s.radius_steps),
            unbalanced_exits: s.unbalanced_exits,
        }
    }
}

fn close_span(open: OpenSpan, stats: Option<ZonotopeStats>, symbols_created: usize) -> SpanRecord {
    SpanRecord {
        label: open.kind.label(),
        group: open.kind.group().to_string(),
        index: open.kind.index(),
        duration_s: open.started.elapsed().as_secs_f64(),
        stats,
        symbols_created,
        reduce: open.reduce,
        parallel: open.parallel,
        eps_storage: open.eps_storage,
        children: open.children,
    }
}

fn attach(stack: &mut [OpenSpan], roots: &mut Vec<SpanRecord>, record: SpanRecord) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(record),
        None => roots.push(record),
    }
}

impl Probe for TraceCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, kind: SpanKind) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.stack.push(OpenSpan {
            kind,
            started: Instant::now(),
            reduce: Vec::new(),
            parallel: None,
            eps_storage: None,
            children: Vec::new(),
        });
    }

    fn span_exit(&self, kind: SpanKind, stats: Option<ZonotopeStats>, symbols_created: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = &mut *s; // split the guard so stack and roots borrow separately
        match s.stack.pop() {
            Some(open) => {
                if open.kind != kind {
                    s.unbalanced_exits += 1;
                }
                let record = close_span(open, stats, symbols_created);
                attach(&mut s.stack, &mut s.roots, record);
            }
            None => s.unbalanced_exits += 1,
        }
    }

    fn reduction(&self, event: ReduceEvent) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match s.stack.last_mut() {
            Some(open) => open.reduce.push(event),
            None => s.orphan_reduce.push(event),
        }
    }

    fn parallel(&self, stats: ParallelStats) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(open) = s.stack.last_mut() {
            match &mut open.parallel {
                Some(acc) => acc.merge(&stats),
                None => open.parallel = Some(stats),
            }
        }
        // Reports outside any span are dropped: without a span there is no
        // duration to relate the busy time to.
    }

    fn eps_storage(&self, stats: EpsStorageStats) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(open) = s.stack.last_mut() {
            match &mut open.eps_storage {
                Some(acc) => acc.merge(&stats),
                None => open.eps_storage = Some(stats),
            }
        }
        // Like `parallel`: reports outside any span are dropped.
    }

    fn radius_step(&self, step: RadiusStep) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.radius_steps.push(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let c = TraceCollector::new();
        c.span_enter(SpanKind::Propagate);
        c.span_enter(SpanKind::EncoderLayer(0));
        c.span_enter(SpanKind::DotProduct);
        c.span_exit(SpanKind::DotProduct, None, 12);
        c.span_enter(SpanKind::Reduction);
        c.reduction(ReduceEvent {
            before: 50,
            after: 20,
            dropped: 30,
        });
        c.span_exit(SpanKind::Reduction, None, 0);
        c.span_exit(
            SpanKind::EncoderLayer(0),
            Some(ZonotopeStats {
                rows: 2,
                cols: 3,
                num_phi: 6,
                num_eps: 20,
                mean_width: 0.1,
                max_width: 0.4,
            }),
            0,
        );
        c.span_exit(SpanKind::Propagate, None, 0);
        let trace = c.finish();

        assert_eq!(trace.unbalanced_exits, 0);
        assert_eq!(trace.spans.len(), 1);
        let root = &trace.spans[0];
        assert_eq!(root.group, "propagate");
        assert_eq!(root.children.len(), 1);
        let layer = &root.children[0];
        assert_eq!(layer.label, "encoder_layer[0]");
        assert_eq!(layer.index, Some(0));
        assert_eq!(layer.children.len(), 2);
        assert_eq!(layer.children[0].group, "dot_product");
        assert_eq!(layer.children[0].symbols_created, 12);
        assert_eq!(layer.children[1].reduce.len(), 1);
        assert_eq!(layer.children[1].reduce[0].dropped, 30);
        // Durations are populated and consistent with nesting.
        assert!(root.duration_s >= layer.duration_s);
        assert!(layer.duration_s >= layer.children[0].duration_s);
        // Subtree aggregation sees the nested metrics.
        assert_eq!(layer.symbols_created_total(), 12);
        assert_eq!(layer.reduce_events_total().len(), 1);
        assert_eq!(trace.span_count(), 4);
    }

    #[test]
    fn dangling_spans_are_closed_on_finish() {
        let c = TraceCollector::new();
        c.span_enter(SpanKind::Propagate);
        c.span_enter(SpanKind::EncoderLayer(1));
        let trace = c.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].children.len(), 1);
        assert_eq!(trace.spans[0].children[0].label, "encoder_layer[1]");
    }

    #[test]
    fn mismatched_exits_are_counted_not_fatal() {
        let c = TraceCollector::new();
        c.span_enter(SpanKind::Softmax);
        c.span_exit(SpanKind::Ffn, None, 0);
        c.span_exit(SpanKind::Ffn, None, 0); // exit with empty stack
        let trace = c.finish();
        assert_eq!(trace.unbalanced_exits, 2);
        assert_eq!(trace.spans.len(), 1);
    }

    #[test]
    fn orphan_reductions_survive_as_synthetic_span() {
        let c = TraceCollector::new();
        c.reduction(ReduceEvent {
            before: 9,
            after: 3,
            dropped: 6,
        });
        let trace = c.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].group, "reduction");
        assert_eq!(trace.spans[0].reduce[0].before, 9);
    }

    #[test]
    fn parallel_reports_attach_to_innermost_span_and_merge() {
        let c = TraceCollector::new();
        c.span_enter(SpanKind::EncoderLayer(0));
        c.span_enter(SpanKind::DotProduct);
        c.parallel(ParallelStats {
            workers: 4,
            invocations: 1,
            tasks: 4,
            busy_ns: 500,
        });
        c.parallel(ParallelStats {
            workers: 2,
            invocations: 2,
            tasks: 2,
            busy_ns: 300,
        });
        c.span_exit(SpanKind::DotProduct, None, 0);
        c.span_exit(SpanKind::EncoderLayer(0), None, 0);
        // A report with no open span is dropped, not misattributed.
        c.parallel(ParallelStats {
            workers: 1,
            invocations: 9,
            tasks: 9,
            busy_ns: 9,
        });
        let trace = c.finish();
        let layer = &trace.spans[0];
        assert_eq!(layer.parallel, None);
        let dot = &layer.children[0];
        assert_eq!(
            dot.parallel,
            Some(ParallelStats {
                workers: 4,
                invocations: 3,
                tasks: 6,
                busy_ns: 800,
            })
        );
    }

    #[test]
    fn radius_steps_recorded_in_order() {
        let c = TraceCollector::new();
        for (i, r) in [0.01, 0.02, 0.015].iter().enumerate() {
            c.radius_step(RadiusStep {
                iteration: i,
                radius: *r,
                certified: i != 1,
            });
        }
        let trace = c.finish();
        assert_eq!(trace.radius_steps.len(), 3);
        assert_eq!(trace.radius_steps[1].iteration, 1);
        assert!(!trace.radius_steps[1].certified);
    }

    #[test]
    fn collector_is_enabled() {
        assert!(TraceCollector::new().enabled());
    }
}
