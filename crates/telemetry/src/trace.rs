//! Structured verification traces: the serializable artifact produced by a
//! [`TraceCollector`](crate::TraceCollector) run, plus the aggregations the
//! bench harness prints (hotspots, per-layer width growth).
//!
//! Traces serialize to JSON with a hand-rolled emitter so the crate stays
//! dependency-free; the format is plain nested objects and is stable enough
//! to diff across runs (artifacts land next to `artifacts/results/*.json`).

use std::fmt::Write as _;
use std::path::Path;

use crate::probe::{EpsStorageStats, ParallelStats, RadiusStep, ReduceEvent, ZonotopeStats};

/// One closed span: a named stage with wall-clock duration, optional
/// precision metrics, and nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Display label (`encoder_layer[2]`, `dot_product`, …).
    pub label: String,
    /// Aggregation group (`encoder_layer`, `dot_product`, …).
    pub group: String,
    /// Instance index for per-layer / per-iteration spans.
    pub index: Option<usize>,
    /// Wall-clock duration in seconds.
    pub duration_s: f64,
    /// Output-zonotope snapshot at span exit, when the probe was enabled.
    pub stats: Option<ZonotopeStats>,
    /// Fresh ε symbols appended by this stage itself (children not counted).
    pub symbols_created: usize,
    /// Noise-symbol reductions attributed to this span.
    pub reduce: Vec<ReduceEvent>,
    /// Parallel-execution counters attributed to this span, when the stage
    /// ran work on the thread pool. Instrumented sites report the counter
    /// delta over their whole region, so — like [`SpanRecord::duration_s`]
    /// and unlike [`SpanRecord::self_s`] — a parent's counters include any
    /// pool work performed inside nested instrumented children.
    pub parallel: Option<ParallelStats>,
    /// ε generator-storage counters attributed to this span: block layout
    /// of the stage's output store plus densification / scratch-arena
    /// event deltas over the instrumented region.
    pub eps_storage: Option<EpsStorageStats>,
    /// Nested child spans, in execution order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Duration spent in this span excluding its children.
    pub fn self_s(&self) -> f64 {
        let child: f64 = self.children.iter().map(|c| c.duration_s).sum();
        (self.duration_s - child).max(0.0)
    }

    /// Total spans in this subtree, including `self`.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::count).sum::<usize>()
    }

    /// Fresh ε symbols created in this whole subtree.
    pub fn symbols_created_total(&self) -> usize {
        self.symbols_created
            + self
                .children
                .iter()
                .map(SpanRecord::symbols_created_total)
                .sum::<usize>()
    }

    /// All reduction events in this subtree, in execution order.
    pub fn reduce_events_total(&self) -> Vec<ReduceEvent> {
        let mut out = self.reduce.clone();
        for c in &self.children {
            out.extend(c.reduce_events_total());
        }
        out
    }

    /// ε storage counters merged over this whole subtree (layout fields
    /// take the last report; event deltas accumulate). `None` when no
    /// span in the subtree reported storage stats.
    pub fn eps_storage_total(&self) -> Option<EpsStorageStats> {
        let mut acc = self.eps_storage;
        for c in &self.children {
            match (&mut acc, c.eps_storage_total()) {
                (Some(a), Some(b)) => a.merge(&b),
                (None, Some(b)) => acc = Some(b),
                _ => {}
            }
        }
        acc
    }
}

/// Aggregate row of the hotspot summary: one stage group over the whole
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Stage group label.
    pub group: String,
    /// Number of spans in the group.
    pub calls: usize,
    /// Cumulative wall-clock seconds (children included).
    pub total_s: f64,
    /// Cumulative self seconds (children excluded).
    pub self_s: f64,
    /// Chunk tasks run on the thread pool by spans of the group.
    pub tasks: u64,
    /// Worker busy seconds (summed across workers) inside the group.
    pub busy_s: f64,
    /// Largest configured worker count seen in the group.
    pub workers: usize,
}

/// Per-encoder-layer precision row: how the zonotope grew through one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWidthRow {
    /// Encoder layer index.
    pub layer: usize,
    /// Wall-clock seconds spent in the layer.
    pub duration_s: f64,
    /// Mean interval width of the layer's output zonotope.
    pub mean_width: f64,
    /// Maximum interval width of the layer's output zonotope.
    pub max_width: f64,
    /// ℓp-bounded φ symbols at layer output.
    pub num_phi: usize,
    /// ℓ∞ ε symbols at layer output.
    pub num_eps: usize,
    /// Fresh ε symbols created inside the layer.
    pub symbols_created: usize,
    /// ε symbols dropped by reductions inside the layer.
    pub symbols_dropped: usize,
    /// Diag→Dense ε block densification events inside the layer.
    pub densifications: u64,
    /// ε columns still held in Diag blocks at layer output.
    pub diag_cols: usize,
}

/// A complete, serializable record of one instrumented verification run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerificationTrace {
    /// Free-form key/value context (verifier name, norm, model, …).
    pub meta: Vec<(String, String)>,
    /// Wall-clock seconds from collector creation to `finish()`.
    pub total_s: f64,
    /// Top-level spans in execution order.
    pub spans: Vec<SpanRecord>,
    /// Radius-search queries, in execution order.
    pub radius_steps: Vec<RadiusStep>,
    /// Span exits whose kind did not match the innermost open span
    /// (instrumentation bug indicator; 0 in a healthy trace).
    pub unbalanced_exits: usize,
}

impl VerificationTrace {
    /// Sets (or replaces) a metadata entry.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.meta.push((key.to_string(), value.to_string()));
        }
    }

    /// Total spans across the trace.
    pub fn span_count(&self) -> usize {
        self.spans.iter().map(SpanRecord::count).sum()
    }

    /// Depth-first iteration over all spans.
    pub fn walk(&self, mut f: impl FnMut(&SpanRecord)) {
        fn rec(span: &SpanRecord, f: &mut impl FnMut(&SpanRecord)) {
            f(span);
            for c in &span.children {
                rec(c, f);
            }
        }
        for s in &self.spans {
            rec(s, &mut f);
        }
    }

    /// Top-`k` stage groups by cumulative self time (the hotspot summary).
    pub fn hotspots(&self, k: usize) -> Vec<Hotspot> {
        let mut groups: Vec<Hotspot> = Vec::new();
        self.walk(|span| {
            let par = span.parallel.unwrap_or_default();
            let busy_s = par.busy_ns as f64 * 1e-9;
            match groups.iter_mut().find(|h| h.group == span.group) {
                Some(h) => {
                    h.calls += 1;
                    h.total_s += span.duration_s;
                    h.self_s += span.self_s();
                    h.tasks += par.tasks;
                    h.busy_s += busy_s;
                    h.workers = h.workers.max(par.workers);
                }
                None => groups.push(Hotspot {
                    group: span.group.clone(),
                    calls: 1,
                    total_s: span.duration_s,
                    self_s: span.self_s(),
                    tasks: par.tasks,
                    busy_s,
                    workers: par.workers,
                }),
            }
        });
        groups.sort_by(|a, b| {
            b.self_s
                .partial_cmp(&a.self_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        groups.truncate(k);
        groups
    }

    /// Per-encoder-layer width-growth table, aggregated over every
    /// `encoder_layer[i]` span in the trace (averaged when a layer appears
    /// in several radius-search iterations).
    pub fn layer_widths(&self) -> Vec<LayerWidthRow> {
        struct Acc {
            row: LayerWidthRow,
            samples: usize,
        }
        let mut acc: Vec<Acc> = Vec::new();
        self.walk(|span| {
            if span.group != "encoder_layer" {
                return;
            }
            let Some(layer) = span.index else { return };
            let reduces = span.reduce_events_total();
            let dropped: usize = reduces.iter().map(|r| r.dropped).sum();
            let created = span.symbols_created_total();
            let stats = span.stats.unwrap_or_default();
            let eps = span.eps_storage_total().unwrap_or_default();
            match acc.iter_mut().find(|a| a.row.layer == layer) {
                Some(a) => {
                    a.row.duration_s += span.duration_s;
                    a.row.mean_width += stats.mean_width;
                    a.row.max_width = a.row.max_width.max(stats.max_width);
                    a.row.num_phi = stats.num_phi;
                    a.row.num_eps = a.row.num_eps.max(stats.num_eps);
                    a.row.symbols_created += created;
                    a.row.symbols_dropped += dropped;
                    a.row.densifications += eps.densifications;
                    a.row.diag_cols = eps.diag_cols;
                    a.samples += 1;
                }
                None => acc.push(Acc {
                    row: LayerWidthRow {
                        layer,
                        duration_s: span.duration_s,
                        mean_width: stats.mean_width,
                        max_width: stats.max_width,
                        num_phi: stats.num_phi,
                        num_eps: stats.num_eps,
                        symbols_created: created,
                        symbols_dropped: dropped,
                        densifications: eps.densifications,
                        diag_cols: eps.diag_cols,
                    },
                    samples: 1,
                }),
            }
        });
        let mut rows: Vec<LayerWidthRow> = acc
            .into_iter()
            .map(|a| {
                let mut row = a.row;
                row.mean_width /= a.samples as f64;
                row
            })
            .collect();
        rows.sort_by_key(|r| r.layer);
        rows
    }

    /// Renders the human-readable summary the bench binaries print after a
    /// table run: hotspots by self time, then per-layer zonotope growth.
    pub fn render_summary(&self, top_k: usize) -> String {
        let mut out = String::new();
        let meta: Vec<String> = self.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(
            out,
            "-- trace: {} spans, {:.3}s total{}{} --",
            self.span_count(),
            self.total_s,
            if meta.is_empty() { "" } else { " · " },
            meta.join(" ")
        );
        let hotspots = self.hotspots(top_k);
        if !hotspots.is_empty() {
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>11} {:>11} {:>7} {:>9} {:>7}",
                "stage", "calls", "self[s]", "total[s]", "tasks", "busy[s]", "workers"
            );
            for h in &hotspots {
                let _ = writeln!(
                    out,
                    "{:<16} {:>7} {:>11.4} {:>11.4} {:>7} {:>9.4} {:>7}",
                    h.group, h.calls, h.self_s, h.total_s, h.tasks, h.busy_s, h.workers
                );
            }
        }
        let layers = self.layer_widths();
        if !layers.is_empty() {
            let _ = writeln!(
                out,
                "{:<6} {:>9} {:>12} {:>12} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
                "layer",
                "time[s]",
                "mean-width",
                "max-width",
                "phi",
                "eps",
                "created",
                "dropped",
                "densify",
                "diag-eps"
            );
            for r in &layers {
                let _ = writeln!(
                    out,
                    "{:<6} {:>9.4} {:>12.4e} {:>12.4e} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
                    r.layer,
                    r.duration_s,
                    r.mean_width,
                    r.max_width,
                    r.num_phi,
                    r.num_eps,
                    r.symbols_created,
                    r.symbols_dropped,
                    r.densifications,
                    r.diag_cols
                );
            }
        }
        if !self.radius_steps.is_empty() {
            let certified = self.radius_steps.iter().filter(|s| s.certified).count();
            let best = self
                .radius_steps
                .iter()
                .filter(|s| s.certified)
                .map(|s| s.radius)
                .fold(0.0, f64::max);
            let _ = writeln!(
                out,
                "radius search: {} queries, {certified} certified, best radius {best:.6}",
                self.radius_steps.len()
            );
        }
        out
    }

    /// Serializes the trace to a JSON string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the trace as pretty-printed-enough JSON to `path`.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("meta");
        w.begin_object();
        for (k, v) in &self.meta {
            w.key(k);
            w.string(v);
        }
        w.end_object();
        w.key("total_s");
        w.number(self.total_s);
        w.key("unbalanced_exits");
        w.number(self.unbalanced_exits as f64);
        w.key("radius_steps");
        w.begin_array();
        for s in &self.radius_steps {
            w.begin_object();
            w.key("iteration");
            w.number(s.iteration as f64);
            w.key("radius");
            w.number(s.radius);
            w.key("certified");
            w.bool(s.certified);
            w.end_object();
        }
        w.end_array();
        w.key("spans");
        w.begin_array();
        for s in &self.spans {
            write_span_json(s, w);
        }
        w.end_array();
        w.end_object();
    }
}

fn write_span_json(span: &SpanRecord, w: &mut JsonWriter) {
    w.begin_object();
    w.key("label");
    w.string(&span.label);
    w.key("group");
    w.string(&span.group);
    if let Some(i) = span.index {
        w.key("index");
        w.number(i as f64);
    }
    w.key("duration_s");
    w.number(span.duration_s);
    w.key("symbols_created");
    w.number(span.symbols_created as f64);
    if let Some(stats) = &span.stats {
        w.key("stats");
        w.begin_object();
        w.key("rows");
        w.number(stats.rows as f64);
        w.key("cols");
        w.number(stats.cols as f64);
        w.key("num_phi");
        w.number(stats.num_phi as f64);
        w.key("num_eps");
        w.number(stats.num_eps as f64);
        w.key("mean_width");
        w.number(stats.mean_width);
        w.key("max_width");
        w.number(stats.max_width);
        w.end_object();
    }
    if let Some(par) = &span.parallel {
        w.key("parallel");
        w.begin_object();
        w.key("workers");
        w.number(par.workers as f64);
        w.key("invocations");
        w.number(par.invocations as f64);
        w.key("tasks");
        w.number(par.tasks as f64);
        w.key("busy_ns");
        w.number(par.busy_ns as f64);
        w.end_object();
    }
    if let Some(eps) = &span.eps_storage {
        w.key("eps_storage");
        w.begin_object();
        w.key("blocks");
        w.number(eps.blocks as f64);
        w.key("diag_cols");
        w.number(eps.diag_cols as f64);
        w.key("dense_cols");
        w.number(eps.dense_cols as f64);
        w.key("densifications");
        w.number(eps.densifications as f64);
        w.key("arena_hits");
        w.number(eps.arena_hits as f64);
        w.key("arena_misses");
        w.number(eps.arena_misses as f64);
        w.end_object();
    }
    if !span.reduce.is_empty() {
        w.key("reduce");
        w.begin_array();
        for r in &span.reduce {
            w.begin_object();
            w.key("before");
            w.number(r.before as f64);
            w.key("after");
            w.number(r.after as f64);
            w.key("dropped");
            w.number(r.dropped as f64);
            w.end_object();
        }
        w.end_array();
    }
    if !span.children.is_empty() {
        w.key("children");
        w.begin_array();
        for c in &span.children {
            write_span_json(c, w);
        }
        w.end_array();
    }
    w.end_object();
}

/// A minimal streaming JSON writer (objects, arrays, strings, numbers,
/// booleans) with two-space indentation. Keeps the crate std-only.
struct JsonWriter {
    buf: String,
    depth: usize,
    /// Whether the current container already holds an element.
    need_comma: Vec<bool>,
    /// The next value attaches to a just-written key (no comma/indent).
    inline_next: bool,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            buf: String::new(),
            depth: 0,
            need_comma: vec![false],
            inline_next: false,
        }
    }

    fn finish(self) -> String {
        self.buf
    }

    fn newline_indent(&mut self) {
        self.buf.push('\n');
        for _ in 0..self.depth {
            self.buf.push_str("  ");
        }
    }

    /// Starts a new element slot inside the current container. A value
    /// following a just-written key attaches inline instead.
    fn element(&mut self) {
        if self.inline_next {
            self.inline_next = false;
            return;
        }
        if *self.need_comma.last().expect("container stack") {
            self.buf.push(',');
        }
        if self.depth > 0 {
            self.newline_indent();
        }
        if let Some(top) = self.need_comma.last_mut() {
            *top = true;
        }
    }

    fn begin_object(&mut self) {
        self.element();
        self.buf.push('{');
        self.depth += 1;
        self.need_comma.push(false);
    }

    fn end_object(&mut self) {
        let had_items = self.need_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_items {
            self.newline_indent();
        }
        self.buf.push('}');
    }

    fn begin_array(&mut self) {
        self.element();
        self.buf.push('[');
        self.depth += 1;
        self.need_comma.push(false);
    }

    fn end_array(&mut self) {
        let had_items = self.need_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_items {
            self.newline_indent();
        }
        self.buf.push(']');
    }

    /// Writes `"key": `; the following value attaches inline.
    fn key(&mut self, key: &str) {
        self.element();
        self.push_escaped(key);
        self.buf.push_str(": ");
        self.inline_next = true;
    }

    fn string(&mut self, s: &str) {
        self.element();
        self.push_escaped(s);
    }

    fn number(&mut self, x: f64) {
        self.element();
        if x.is_finite() {
            // Integers print without a trailing `.0`, like serde_json.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(self.buf, "{}", x as i64);
            } else {
                let _ = write!(self.buf, "{x}");
            }
        } else {
            self.buf.push_str("null");
        }
    }

    fn bool(&mut self, b: bool) {
        self.element();
        self.buf.push_str(if b { "true" } else { "false" });
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(group: &str, dur: f64) -> SpanRecord {
        SpanRecord {
            label: group.to_string(),
            group: group.to_string(),
            index: None,
            duration_s: dur,
            stats: None,
            symbols_created: 0,
            reduce: Vec::new(),
            parallel: None,
            eps_storage: None,
            children: Vec::new(),
        }
    }

    fn sample_trace() -> VerificationTrace {
        let mut layer = leaf("encoder_layer", 1.0);
        layer.label = "encoder_layer[0]".into();
        layer.index = Some(0);
        layer.stats = Some(ZonotopeStats {
            rows: 4,
            cols: 8,
            num_phi: 8,
            num_eps: 120,
            mean_width: 0.5,
            max_width: 2.0,
        });
        let mut dot = leaf("dot_product", 0.6);
        dot.symbols_created = 32;
        dot.parallel = Some(ParallelStats {
            workers: 4,
            invocations: 3,
            tasks: 12,
            busy_ns: 2_000_000_000,
        });
        layer.children.push(dot);
        layer.children.push(leaf("softmax", 0.3));
        let mut red = leaf("reduction", 0.05);
        red.reduce.push(ReduceEvent {
            before: 200,
            after: 120,
            dropped: 80,
        });
        layer.children.push(red);
        let mut root = leaf("propagate", 1.2);
        root.children.push(layer);
        VerificationTrace {
            meta: vec![("verifier".into(), "DeepT-Fast".into())],
            total_s: 1.25,
            spans: vec![root],
            radius_steps: vec![RadiusStep {
                iteration: 0,
                radius: 0.01,
                certified: true,
            }],
            unbalanced_exits: 0,
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let t = sample_trace();
        let root = &t.spans[0];
        assert!((root.self_s() - 0.2).abs() < 1e-12);
        let layer = &root.children[0];
        assert!((layer.self_s() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn hotspots_aggregate_and_rank_by_self_time() {
        let t = sample_trace();
        let h = t.hotspots(10);
        // dot_product has the largest self time (0.6).
        assert_eq!(h[0].group, "dot_product");
        assert_eq!(h[0].calls, 1);
        assert!((h[0].self_s - 0.6).abs() < 1e-12);
        // Parallel counters aggregate into the hotspot row.
        assert_eq!(h[0].tasks, 12);
        assert_eq!(h[0].workers, 4);
        assert!((h[0].busy_s - 2.0).abs() < 1e-12);
        // All five groups appear.
        assert_eq!(h.len(), 5);
        // Truncation honors k.
        assert_eq!(t.hotspots(2).len(), 2);
    }

    #[test]
    fn layer_width_table_collects_metrics() {
        let t = sample_trace();
        let rows = t.layer_widths();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.layer, 0);
        assert_eq!(r.num_eps, 120);
        assert_eq!(r.symbols_created, 32);
        assert_eq!(r.symbols_dropped, 80);
        assert!((r.mean_width - 0.5).abs() < 1e-12);
        assert!((r.max_width - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_contains_expected_structure() {
        let t = sample_trace();
        let json = t.to_json();
        for needle in [
            "\"meta\"",
            "\"verifier\": \"DeepT-Fast\"",
            "\"total_s\"",
            "\"radius_steps\"",
            "\"certified\": true",
            "\"label\": \"encoder_layer[0]\"",
            "\"num_eps\": 120",
            "\"dropped\": 80",
            "\"symbols_created\": 32",
            "\"workers\": 4",
            "\"busy_ns\": 2000000000",
            "\"children\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_strings() {
        let mut t = VerificationTrace::default();
        t.set_meta("note", "a \"quoted\"\nline\\");
        let json = t.to_json();
        assert!(json.contains("a \\\"quoted\\\"\\nline\\\\"));
    }

    #[test]
    fn set_meta_replaces_existing_key() {
        let mut t = VerificationTrace::default();
        t.set_meta("k", "1");
        t.set_meta("k", "2");
        assert_eq!(t.meta, vec![("k".to_string(), "2".to_string())]);
    }

    #[test]
    fn render_summary_mentions_layers_and_hotspots() {
        let t = sample_trace();
        let s = t.render_summary(5);
        assert!(s.contains("dot_product"));
        assert!(s.contains("mean-width"));
        assert!(s.contains("radius search: 1 queries"));
    }
}
