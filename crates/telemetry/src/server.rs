//! Counters for the certification server.
//!
//! [`ServerCounters`] is a lock-free bundle of atomics the serving layer
//! bumps on its hot path (request intake, queue admission, worker
//! completion, cache probes). [`ServerCounters::snapshot`] freezes them
//! into a plain [`ServerStats`] for `Status` responses and the shutdown
//! summary. Like the rest of this crate it is dependency-free; the serving
//! layer owns the wire encoding.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters plus two gauges, shared across server threads.
///
/// All operations use relaxed ordering: the counters feed reporting, not
/// synchronization, and every increment site already runs under the queue
/// or connection machinery's own locks where ordering matters.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Requests read off a connection (before validation).
    pub received: AtomicU64,
    /// Certification jobs completed by a worker.
    pub completed: AtomicU64,
    /// Certify requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Certify requests that missed the cache and ran the verifier.
    pub cache_misses: AtomicU64,
    /// Jobs aborted because their deadline expired.
    pub deadline_aborts: AtomicU64,
    /// Requests rejected because the job queue was full.
    pub overloaded: AtomicU64,
    /// Gauge: jobs currently waiting in the queue.
    pub queue_depth: AtomicU64,
    /// Gauge: jobs currently executing on workers.
    pub in_flight: AtomicU64,
}

impl ServerCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one from a gauge, saturating at zero.
    pub fn drop_gauge(gauge: &AtomicU64) {
        // fetch_update never fails with a total closure; saturate rather
        // than wrap if a release/acquire race ever double-decrements.
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`ServerCounters`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests read off a connection.
    pub received: u64,
    /// Certification jobs completed by a worker.
    pub completed: u64,
    /// Certify requests answered from the result cache.
    pub cache_hits: u64,
    /// Certify requests that ran the verifier.
    pub cache_misses: u64,
    /// Jobs aborted on deadline expiry.
    pub deadline_aborts: u64,
    /// Requests rejected with `Overloaded`.
    pub overloaded: u64,
    /// Jobs waiting in the queue at snapshot time.
    pub queue_depth: u64,
    /// Jobs executing at snapshot time.
    pub in_flight: u64,
}

impl ServerStats {
    /// Cache hit rate in `[0, 1]`; `None` before any cache probe.
    pub fn hit_rate(&self) -> Option<f64> {
        let probes = self.cache_hits + self.cache_misses;
        #[allow(clippy::cast_precision_loss)]
        (probes > 0).then(|| self.cache_hits as f64 / probes as f64)
    }

    /// One-line human summary, in the style of the trace hotspot report.
    pub fn render_summary(&self) -> String {
        let hit_rate = match self.hit_rate() {
            Some(r) => format!("{:.0}%", 100.0 * r),
            None => "n/a".to_string(),
        };
        format!(
            "served {} requests ({} completed, {} overloaded, {} deadline-aborted); \
             cache {} hits / {} misses ({hit_rate}); {} queued, {} in flight",
            self.received,
            self.completed,
            self.overloaded,
            self.deadline_aborts,
            self.cache_hits,
            self.cache_misses,
            self.queue_depth,
            self.in_flight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = ServerCounters::new();
        ServerCounters::bump(&c.received);
        ServerCounters::bump(&c.received);
        ServerCounters::bump(&c.cache_hits);
        ServerCounters::bump(&c.queue_depth);
        let s = c.snapshot();
        assert_eq!(s.received, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn gauges_saturate_at_zero() {
        let c = ServerCounters::new();
        ServerCounters::bump(&c.in_flight);
        ServerCounters::drop_gauge(&c.in_flight);
        ServerCounters::drop_gauge(&c.in_flight);
        assert_eq!(c.snapshot().in_flight, 0);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = Arc::new(ServerCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        ServerCounters::bump(&c.completed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().completed, 1000);
    }

    #[test]
    fn hit_rate_and_summary() {
        let mut s = ServerStats::default();
        assert_eq!(s.hit_rate(), None);
        assert!(s.render_summary().contains("n/a"));
        s.cache_hits = 3;
        s.cache_misses = 1;
        s.received = 4;
        assert!((s.hit_rate().unwrap() - 0.75).abs() < 1e-12);
        let line = s.render_summary();
        assert!(line.contains("75%"), "{line}");
        assert!(line.contains("served 4 requests"), "{line}");
    }
}
