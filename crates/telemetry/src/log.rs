//! Leveled stderr logging gated by the `DEEPT_LOG` environment variable.
//!
//! Levels: `off` < `warn` < `info` < `debug`. The variable is read once
//! (first log call) and cached. An unset variable defaults to `info` so
//! progress messages from the bench harness keep appearing exactly as
//! before; `DEEPT_LOG=off` silences them and `DEEPT_LOG=debug` adds
//! detail. Warnings print at every level except `off`.
//!
//! Use through the [`info!`](crate::info) / [`debug!`](crate::debug) macros:
//!
//! ```
//! deept_telemetry::info!("models", "training encoder with {} layers", 3);
//! ```

use std::sync::OnceLock;

/// Verbosity threshold parsed from `DEEPT_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No output.
    Off,
    /// Recoverable degradations (never silenced except by `off`).
    Warn,
    /// Progress messages (the default).
    Info,
    /// Per-stage detail.
    Debug,
}

impl LogLevel {
    /// Parses a `DEEPT_LOG` value; `None` for unrecognized strings.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(LogLevel::Off),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" | "1" => Some(LogLevel::Info),
            "debug" | "trace" | "2" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

static MAX_LEVEL: OnceLock<LogLevel> = OnceLock::new();

/// The active verbosity threshold (reads `DEEPT_LOG` on first call).
///
/// Unset or unrecognized values fall back to [`LogLevel::Info`].
pub fn max_level() -> LogLevel {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("DEEPT_LOG")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info)
    })
}

/// Whether messages at `level` are currently emitted.
pub fn log_enabled(level: LogLevel) -> bool {
    level != LogLevel::Off && level <= max_level()
}

/// Writes one log line to stderr. Prefer the [`info!`](crate::info) /
/// [`debug!`](crate::debug) macros, which skip formatting when disabled.
pub fn log(level: LogLevel, module: &str, args: std::fmt::Arguments<'_>) {
    if log_enabled(level) {
        eprintln!("[deept][{}][{}] {}", level.tag(), module, args);
    }
}

/// Logs a progress message at [`LogLevel::Info`].
///
/// First argument is a short module tag (e.g. `"models"`, `"report"`),
/// followed by a `format!` string and arguments.
#[macro_export]
macro_rules! info {
    ($module:expr, $($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Info) {
            $crate::log($crate::LogLevel::Info, $module, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs a recoverable degradation at [`LogLevel::Warn`].
///
/// Warnings are emitted at every verbosity except `off`: they report
/// conditions the process survives but an operator should know about
/// (failed accepts, unspawnable threads, degraded pools).
#[macro_export]
macro_rules! warn {
    ($module:expr, $($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Warn) {
            $crate::log($crate::LogLevel::Warn, $module, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs a detail message at [`LogLevel::Debug`].
#[macro_export]
macro_rules! debug {
    ($module:expr, $($arg:tt)*) => {
        if $crate::log_enabled($crate::LogLevel::Debug) {
            $crate::log($crate::LogLevel::Debug, $module, ::core::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognizes_aliases() {
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("NONE"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("0"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse(" info "), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("1"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("Debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("trace"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("2"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert_eq!(LogLevel::parse(""), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(LogLevel::Off < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn warn_parses_and_is_below_info() {
        assert_eq!(LogLevel::parse("warn"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("Warning"), Some(LogLevel::Warn));
        // At the default info threshold, warnings are emitted.
        assert!(log_enabled(LogLevel::Warn) || max_level() == LogLevel::Off);
    }

    #[test]
    fn off_is_never_enabled() {
        // Regardless of the cached threshold, Off messages never print.
        assert!(!log_enabled(LogLevel::Off));
    }

    #[test]
    fn macros_compile_and_run() {
        // Smoke test: the macros expand and execute without panicking.
        crate::info!("telemetry", "info message {}", 1);
        crate::debug!("telemetry", "debug message {:?}", (1, 2));
    }
}
