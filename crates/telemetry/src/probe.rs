//! The [`Probe`] trait: the hook surface that abstract-propagation code is
//! instrumented against.
//!
//! Library crates (`deept-core`, `deept-verifier`) call probe methods at the
//! boundaries of every interesting stage — encoder layers, abstract
//! transformers, noise-symbol reductions, radius-search iterations — but
//! never depend on any collection machinery. The default implementation of
//! every method is empty and [`NoopProbe::enabled`] returns `false`, so an
//! uninstrumented run pays only a virtual call that does nothing and skips
//! all metric computation (instrumentation sites must guard anything
//! expensive behind [`Probe::enabled`]).

/// Identity of an instrumented stage of the verification pipeline.
///
/// Indices (layer number, radius-search iteration) are part of the identity
/// so traces can be grouped per layer; [`SpanKind::group`] strips them for
/// hotspot aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Whole-network abstract propagation.
    Propagate,
    /// One encoder layer (0-based).
    EncoderLayer(usize),
    /// Multi-head self-attention inside an encoder layer.
    Attention,
    /// One zonotope–zonotope dot product (scores or attention·values).
    DotProduct,
    /// The softmax abstract transformer over one score matrix.
    Softmax,
    /// One abstract layer normalization.
    LayerNorm,
    /// The feed-forward block (dense → ReLU → dense).
    Ffn,
    /// One `DecorrelateMin_k` noise-symbol reduction.
    Reduction,
    /// Pooling plus the classification head.
    Pooling,
    /// A whole binary search for the maximum certified radius.
    RadiusSearch,
    /// One certification query of the radius search (0-based).
    RadiusIter(usize),
    /// One branch-and-bound node of the abstraction-refinement ladder
    /// (`crates/refine`), numbered in exploration order.
    RefineNode(usize),
}

impl SpanKind {
    /// Aggregation key: the stage name without per-instance indices.
    pub fn group(&self) -> &'static str {
        match self {
            SpanKind::Propagate => "propagate",
            SpanKind::EncoderLayer(_) => "encoder_layer",
            SpanKind::Attention => "attention",
            SpanKind::DotProduct => "dot_product",
            SpanKind::Softmax => "softmax",
            SpanKind::LayerNorm => "layer_norm",
            SpanKind::Ffn => "ffn",
            SpanKind::Reduction => "reduction",
            SpanKind::Pooling => "pooling",
            SpanKind::RadiusSearch => "radius_search",
            SpanKind::RadiusIter(_) => "radius_iter",
            SpanKind::RefineNode(_) => "refine_node",
        }
    }

    /// Display label including the instance index, e.g. `encoder_layer[2]`.
    pub fn label(&self) -> String {
        match self {
            SpanKind::EncoderLayer(i) => format!("encoder_layer[{i}]"),
            SpanKind::RadiusIter(i) => format!("radius_iter[{i}]"),
            SpanKind::RefineNode(i) => format!("refine_node[{i}]"),
            other => other.group().to_string(),
        }
    }

    /// The instance index, if this kind carries one.
    pub fn index(&self) -> Option<usize> {
        match self {
            SpanKind::EncoderLayer(i) | SpanKind::RadiusIter(i) | SpanKind::RefineNode(i) => {
                Some(*i)
            }
            _ => None,
        }
    }
}

/// Precision snapshot of a zonotope, sampled at span boundaries.
///
/// Widths are concrete interval widths `u_k − l_k` per abstracted variable;
/// symbol counts separate the jointly ℓp-bounded `φ` symbols from the
/// independent ℓ∞ `ε` symbols.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ZonotopeStats {
    /// Logical rows of the variable matrix.
    pub rows: usize,
    /// Logical columns of the variable matrix.
    pub cols: usize,
    /// Number of ℓp-bounded `φ` noise symbols.
    pub num_phi: usize,
    /// Number of ℓ∞ `ε` noise symbols.
    pub num_eps: usize,
    /// Mean interval width over all variables.
    pub mean_width: f64,
    /// Maximum interval width over all variables.
    pub max_width: f64,
}

/// One noise-symbol reduction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceEvent {
    /// ε symbols before the reduction.
    pub before: usize,
    /// ε symbols after the reduction.
    pub after: usize,
    /// Symbols folded away.
    pub dropped: usize,
}

/// Parallel-execution counters for one stage, reported by instrumentation
/// sites that wrap work running on the scoped thread pool.
///
/// Counters are deltas over the stage (not process totals). `busy_ns` sums
/// worker busy time across workers, so `busy_ns` compared against the
/// span's wall-clock duration shows the effective speedup of the stage;
/// `tasks / invocations` shows how finely work was actually split (1.0
/// means everything ran inline on the calling thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelStats {
    /// Configured worker count at the time the stage ran.
    pub workers: usize,
    /// Parallel-layer entry points reached inside the stage.
    pub invocations: u64,
    /// Chunk tasks executed inside the stage.
    pub tasks: u64,
    /// Worker busy time in nanoseconds, summed across workers.
    pub busy_ns: u64,
}

impl ParallelStats {
    /// Accumulates another stage's counters into this one (used when
    /// several reports land on the same span).
    pub fn merge(&mut self, other: &ParallelStats) {
        self.workers = self.workers.max(other.workers);
        self.invocations += other.invocations;
        self.tasks += other.tasks;
        self.busy_ns += other.busy_ns;
    }

    /// Whether any parallel-layer work was observed at all.
    pub fn is_empty(&self) -> bool {
        self.invocations == 0
    }
}

/// ε-generator storage counters for one stage, reported by instrumentation
/// sites when the block-structured store is in play.
///
/// Layout fields (`blocks`, `diag_cols`, `dense_cols`) describe the stage's
/// *output* store; event fields (`densifications`, `arena_hits`,
/// `arena_misses`) are deltas over the stage. `densifications` counts
/// Diag→Dense block conversions — the lazy materializations triggered by
/// row-mixing linear maps — and the arena counters measure scratch-buffer
/// reuse on the propagation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpsStorageStats {
    /// Stored blocks in the stage's output generator store.
    pub blocks: usize,
    /// Columns held in diagonal (one-nonzero) blocks.
    pub diag_cols: usize,
    /// Columns held in dense blocks.
    pub dense_cols: usize,
    /// Diag→Dense conversions during the stage.
    pub densifications: u64,
    /// Scratch-arena requests served from the pool during the stage.
    pub arena_hits: u64,
    /// Scratch-arena requests that fell back to fresh allocations.
    pub arena_misses: u64,
}

impl EpsStorageStats {
    /// Accumulates another report onto this one (used when several reports
    /// land on the same span): layout fields keep the latest report, event
    /// deltas add up.
    pub fn merge(&mut self, other: &EpsStorageStats) {
        self.blocks = other.blocks;
        self.diag_cols = other.diag_cols;
        self.dense_cols = other.dense_cols;
        self.densifications += other.densifications;
        self.arena_hits += other.arena_hits;
        self.arena_misses += other.arena_misses;
    }

    /// Fraction of arena requests served from the pool, if any were made.
    pub fn arena_hit_rate(&self) -> Option<f64> {
        let total = self.arena_hits + self.arena_misses;
        (total > 0).then(|| self.arena_hits as f64 / total as f64)
    }
}

/// One certification query inside a radius binary search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusStep {
    /// 0-based query index within the search.
    pub iteration: usize,
    /// Radius queried.
    pub radius: f64,
    /// Whether certification succeeded at this radius.
    pub certified: bool,
}

/// Observer of the verification pipeline. All methods default to no-ops.
///
/// Implementations must be cheap and must never influence the computation
/// they observe: an active probe is required to leave results bitwise
/// identical to an unprobed run (enforced by the equivalence tests).
pub trait Probe {
    /// Whether instrumentation sites should compute (possibly expensive)
    /// metrics such as [`ZonotopeStats`]. `false` for [`NoopProbe`].
    fn enabled(&self) -> bool {
        false
    }

    /// A stage begins.
    fn span_enter(&self, _kind: SpanKind) {}

    /// A stage ends. `stats` describes the stage's output zonotope when the
    /// probe is enabled and a zonotope is in scope; `symbols_created` counts
    /// fresh ε symbols appended by the stage.
    fn span_exit(&self, _kind: SpanKind, _stats: Option<ZonotopeStats>, _symbols_created: usize) {}

    /// A noise-symbol reduction ran (attributed to the current open span).
    fn reduction(&self, _event: ReduceEvent) {}

    /// Parallel-execution counters for work that just ran (attributed to
    /// the current open span; merged if the span receives several reports).
    fn parallel(&self, _stats: ParallelStats) {}

    /// ε-storage counters for work that just ran (attributed to the current
    /// open span; merged if the span receives several reports).
    fn eps_storage(&self, _stats: EpsStorageStats) {}

    /// A radius-search query finished.
    fn radius_step(&self, _step: RadiusStep) {}
}

/// The zero-cost default probe: records nothing, reports `enabled() = false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled_and_inert() {
        let p = NoopProbe;
        assert!(!p.enabled());
        // All hooks accept calls without side effects or panics.
        p.span_enter(SpanKind::Propagate);
        p.span_exit(SpanKind::Propagate, Some(ZonotopeStats::default()), 3);
        p.reduction(ReduceEvent {
            before: 10,
            after: 4,
            dropped: 6,
        });
        p.parallel(ParallelStats {
            workers: 4,
            invocations: 2,
            tasks: 8,
            busy_ns: 1_000,
        });
        p.radius_step(RadiusStep {
            iteration: 0,
            radius: 0.1,
            certified: true,
        });
    }

    #[test]
    fn parallel_stats_merge_adds_counters_and_maxes_workers() {
        let mut a = ParallelStats {
            workers: 2,
            invocations: 1,
            tasks: 2,
            busy_ns: 100,
        };
        assert!(!a.is_empty());
        assert!(ParallelStats::default().is_empty());
        a.merge(&ParallelStats {
            workers: 8,
            invocations: 3,
            tasks: 12,
            busy_ns: 900,
        });
        assert_eq!(
            a,
            ParallelStats {
                workers: 8,
                invocations: 4,
                tasks: 14,
                busy_ns: 1_000,
            }
        );
    }

    #[test]
    fn span_labels_and_groups() {
        assert_eq!(SpanKind::EncoderLayer(2).label(), "encoder_layer[2]");
        assert_eq!(SpanKind::EncoderLayer(2).group(), "encoder_layer");
        assert_eq!(SpanKind::EncoderLayer(2).index(), Some(2));
        assert_eq!(SpanKind::DotProduct.label(), "dot_product");
        assert_eq!(SpanKind::DotProduct.index(), None);
        assert_eq!(SpanKind::RadiusIter(7).label(), "radius_iter[7]");
    }
}
