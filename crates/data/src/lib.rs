//! Synthetic datasets for the DeepT-rs reproduction.
//!
//! The paper evaluates on SST, Yelp and MNIST with counter-fitted synonym
//! attacks; those artifacts are proprietary-adjacent or external, so this
//! crate generates structurally equivalent synthetic data (each substitution
//! is documented in DESIGN.md):
//!
//! * [`vocab`] / [`sentiment`] — sentiment corpora with latent polarity,
//!   negators, intensifiers and planted synonym groups (SST-like and
//!   Yelp-like presets);
//! * [`synonyms`] — k-nearest-neighbour synonym sets in the learned
//!   embedding space, the construction of the paper's reference [1];
//! * [`images`] — oriented-grating image classes (MNIST-like) for the
//!   Appendix A.2/A.3 experiments.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let ds = deept_data::sentiment::generate(deept_data::sentiment::sst_spec(), &mut rng);
//! assert!(!ds.train.is_empty());
//! let (tokens, label) = &ds.train[0];
//! assert!(*label <= 1 && !tokens.is_empty());
//! ```

pub mod images;
pub mod sentiment;
pub mod synonyms;
pub mod vocab;

pub use sentiment::SentimentDataset;
pub use synonyms::{SynonymArtifact, SynonymSets};
pub use vocab::{TokenKind, Vocab, VocabSpec};
