//! Synthetic image datasets standing in for MNIST (DESIGN.md,
//! substitution 4), used by the Appendix A.2 (binary MLP) and A.3 (Vision
//! Transformer) experiments.
//!
//! Each class is a deterministic oriented-grating template; examples add
//! pixel noise and a small random phase shift, so the task is learnable but
//! not trivial.

use rand::Rng;

/// A labelled image: row-major pixels in `[0, 1]` and a class id.
pub type Image = (Vec<f64>, usize);

/// Parameters of the image generators.
#[derive(Debug, Clone, Copy)]
pub struct ImageSpec {
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Number of classes.
    pub classes: usize,
    /// Examples per class.
    pub per_class: usize,
    /// Pixel-noise amplitude.
    pub noise: f64,
}

/// The class template: an oriented grating whose angle encodes the class.
pub fn template(spec: &ImageSpec, class: usize, phase: f64) -> Vec<f64> {
    let theta = std::f64::consts::PI * class as f64 / spec.classes as f64;
    let (s, c) = theta.sin_cos();
    let freq = 2.0 * std::f64::consts::PI / (spec.w as f64 / 2.0);
    let mut out = Vec::with_capacity(spec.h * spec.w);
    for y in 0..spec.h {
        for x in 0..spec.w {
            let proj = x as f64 * c + y as f64 * s;
            let v = 0.5 + 0.5 * (freq * proj + phase).sin();
            out.push(v);
        }
    }
    out
}

/// Generates a labelled dataset of noisy class templates.
pub fn generate(spec: ImageSpec, rng: &mut impl Rng) -> Vec<Image> {
    let mut out = Vec::with_capacity(spec.classes * spec.per_class);
    for class in 0..spec.classes {
        for _ in 0..spec.per_class {
            // Jitter around π/2 keeps the grating polarity stable — a phase
            // near 0 would invert the pattern sign and make the classes
            // linearly inseparable.
            let phase: f64 = std::f64::consts::FRAC_PI_2 + rng.gen_range(-0.4..0.4);
            let mut pixels = template(&spec, class, phase);
            for p in &mut pixels {
                *p = (*p + rng.gen_range(-spec.noise..spec.noise)).clamp(0.0, 1.0);
            }
            out.push((pixels, class));
        }
    }
    out
}

/// The binary "1 vs 7"-style dataset of Appendix A.2: two well-separated
/// classes on small images, suitable for a complete verifier.
pub fn binary_spec(side: usize, per_class: usize) -> ImageSpec {
    ImageSpec {
        h: side,
        w: side,
        classes: 2,
        per_class,
        noise: 0.15,
    }
}

/// The 10-class dataset of Appendix A.3 for the Vision Transformer.
pub fn digits_spec(side: usize, per_class: usize) -> ImageSpec {
    ImageSpec {
        h: side,
        w: side,
        classes: 10,
        per_class,
        noise: 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generation_shapes_and_ranges() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let spec = digits_spec(8, 5);
        let data = generate(spec, &mut rng);
        assert_eq!(data.len(), 50);
        for (px, label) in &data {
            assert_eq!(px.len(), 64);
            assert!(*label < 10);
            assert!(px.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn templates_differ_between_classes() {
        let spec = digits_spec(8, 1);
        let a = template(&spec, 0, 0.0);
        let b = template(&spec, 5, 0.0);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "class templates too similar: {diff}");
    }

    #[test]
    fn same_class_examples_are_similar() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = binary_spec(8, 4);
        let data = generate(spec, &mut rng);
        let class0: Vec<&Vec<f64>> = data
            .iter()
            .filter(|(_, l)| *l == 0)
            .map(|(p, _)| p)
            .collect();
        let d_within: f64 = class0[0]
            .iter()
            .zip(class0[1])
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let class1: Vec<&Vec<f64>> = data
            .iter()
            .filter(|(_, l)| *l == 1)
            .map(|(p, _)| p)
            .collect();
        let d_between: f64 = class0[0]
            .iter()
            .zip(class1[0])
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(d_within < d_between, "{d_within} vs {d_between}");
    }
}
