//! Synonym-set construction for threat model T2.
//!
//! Following the attack of Alzantot et al. (the paper's reference [1]),
//! synonym candidates for a word are its nearest neighbours in the *learned*
//! embedding space, subject to a distance threshold. The planted vocabulary
//! groups make these neighbourhoods non-trivial after training.

use std::io;
use std::path::{Path, PathBuf};

use deept_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Counter-fits an embedding table toward its planted synonym groups, the
/// role of the counter-fitted word vectors of Mrkšić et al. (the paper's
/// reference [40]): each group member moves fraction `alpha` of the way to
/// its group centroid, so genuine synonyms end up close in embedding space
/// while unrelated words stay apart.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]` or the table's row count differs
/// from the vocabulary size.
pub fn counter_fit(embeddings: &mut Matrix, vocab: &crate::vocab::Vocab, alpha: f64) {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    assert_eq!(
        embeddings.rows(),
        vocab.len(),
        "embedding/vocab size mismatch"
    );
    let e = embeddings.cols();
    for g in 0..vocab.num_groups() {
        let members = vocab.group_members(g);
        if members.len() < 2 {
            continue;
        }
        let mut centroid = vec![0.0; e];
        for &m in &members {
            for (c, &v) in centroid.iter_mut().zip(embeddings.row(m)) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= members.len() as f64;
        }
        for &m in &members {
            let row = embeddings.row_mut(m);
            for (v, &c) in row.iter_mut().zip(&centroid) {
                *v = (1.0 - alpha) * *v + alpha * c;
            }
        }
    }
}

/// Synonym sets over a vocabulary: `sets[token]` lists the admissible
/// replacement token ids (never including the token itself).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynonymSets {
    sets: Vec<Vec<usize>>,
}

impl SynonymSets {
    /// Builds synonym sets as k-nearest neighbours in embedding space within
    /// `max_dist` (ℓ2), exactly like the embedding-neighbourhood attack of
    /// the paper's reference [1].
    ///
    /// # Panics
    ///
    /// Panics if `embeddings` has no rows.
    pub fn from_embeddings(embeddings: &Matrix, k: usize, max_dist: f64) -> Self {
        assert!(embeddings.rows() > 0, "empty embedding table");
        let n = embeddings.rows();
        let mut sets = Vec::with_capacity(n);
        for i in 0..n {
            let mut dists: Vec<(usize, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let d = deept_tensor::l2_norm(&deept_tensor::vec_sub(
                        embeddings.row(i),
                        embeddings.row(j),
                    ));
                    (j, d)
                })
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            sets.push(
                dists
                    .into_iter()
                    .take(k)
                    .filter(|&(_, d)| d <= max_dist)
                    .map(|(j, _)| j)
                    .collect(),
            );
        }
        SynonymSets { sets }
    }

    /// Builds synonym sets directly from planted vocabulary groups.
    pub fn from_groups(vocab: &crate::vocab::Vocab) -> Self {
        let n = vocab.len();
        let mut sets = vec![Vec::new(); n];
        for g in 0..vocab.num_groups() {
            let members = vocab.group_members(g);
            for &m in &members {
                sets[m] = members.iter().copied().filter(|&x| x != m).collect();
            }
        }
        SynonymSets { sets }
    }

    /// Synonyms of `token`.
    pub fn of(&self, token: usize) -> &[usize] {
        &self.sets[token]
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no synonym sets exist.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Number of synonym combinations of a sentence: `Π (1 + |syn(tᵢ)|)`,
    /// saturating at `u128::MAX`.
    pub fn combinations(&self, tokens: &[usize]) -> u128 {
        tokens.iter().fold(1u128, |acc, &t| {
            acc.saturating_mul(1 + self.sets[t].len() as u128)
        })
    }

    /// Restricts each set to at most `k` synonyms (used to bound
    /// enumeration baselines).
    pub fn truncated(&self, k: usize) -> SynonymSets {
        SynonymSets {
            sets: self
                .sets
                .iter()
                .map(|s| s.iter().copied().take(k).collect())
                .collect(),
        }
    }
}

/// A persisted synonym-set artifact, keyed by the checkpoint fingerprint
/// and the construction parameters.
///
/// [`SynonymSets::from_embeddings`] is an O(V²) scan over the embedding
/// table — cheap to do once per checkpoint, wasteful per invocation. The
/// CLI computes the sets the first time a checkpoint is queried, saves
/// them here, and both the CLI and `deept-serve` reuse the artifact (or
/// an in-memory memo) afterwards. The fingerprint, `k` and `dist` fields
/// are validated on load, so a stale artifact for a retrained checkpoint
/// can never be served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynonymArtifact {
    /// Content fingerprint of the checkpoint the sets were computed from.
    pub fingerprint: String,
    /// `k` passed to [`SynonymSets::from_embeddings`].
    pub k: usize,
    /// `max_dist` passed to [`SynonymSets::from_embeddings`].
    pub dist: f64,
    /// The computed sets.
    pub sets: SynonymSets,
}

impl SynonymArtifact {
    /// Canonical file name for one `(fingerprint, k, dist)` combination;
    /// `dist` is keyed by bit pattern so nearby thresholds never alias.
    pub fn file_name(fingerprint: &str, k: usize, dist: f64) -> String {
        format!("{fingerprint}-k{k}-d{:016x}.json", dist.to_bits())
    }

    /// The artifact's path inside `dir`.
    pub fn path_in(dir: &Path, fingerprint: &str, k: usize, dist: f64) -> PathBuf {
        dir.join(Self::file_name(fingerprint, k, dist))
    }

    /// Writes the artifact into `dir` (created if missing) under its
    /// canonical name and returns the path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created or the file cannot be written.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_in(dir, &self.fingerprint, self.k, self.dist);
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Loads the artifact for `(fingerprint, k, dist)` from `dir`,
    /// validating that its recorded key fields match. Any failure —
    /// missing file, parse error, key mismatch — yields `None`, and the
    /// caller recomputes from the embeddings.
    pub fn load(dir: &Path, fingerprint: &str, k: usize, dist: f64) -> Option<SynonymArtifact> {
        let path = Self::path_in(dir, fingerprint, k, dist);
        let json = std::fs::read_to_string(path).ok()?;
        let artifact: SynonymArtifact = serde_json::from_str(&json).ok()?;
        (artifact.fingerprint == fingerprint
            && artifact.k == k
            && artifact.dist.to_bits() == dist.to_bits())
        .then_some(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{Vocab, VocabSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn knn_synonyms_respect_distance_threshold() {
        // Three clustered points and one far away.
        let emb = Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.0], &[0.0, 0.1], &[10.0, 10.0]]);
        let syn = SynonymSets::from_embeddings(&emb, 3, 0.5);
        assert_eq!(syn.of(0), &[1, 2]);
        assert!(syn.of(3).is_empty());
        // Token never lists itself.
        for t in 0..4 {
            assert!(!syn.of(t).contains(&t));
        }
    }

    #[test]
    fn knn_limits_to_k() {
        let emb = Matrix::from_rows(&[&[0.0], &[0.01], &[0.02], &[0.03]]);
        let syn = SynonymSets::from_embeddings(&emb, 2, 1.0);
        assert_eq!(syn.of(0).len(), 2);
    }

    #[test]
    fn group_synonyms_cover_groups() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let v = Vocab::generate(
            VocabSpec {
                positive_groups: 2,
                negative_groups: 1,
                group_size: 4,
                neutral: 3,
                intensifiers: 0,
                negators: 0,
            },
            &mut rng,
        );
        let syn = SynonymSets::from_groups(&v);
        let g0 = v.group_members(0);
        for &m in &g0 {
            assert_eq!(syn.of(m).len(), 3);
        }
        // Neutral tokens have no synonyms.
        for i in v.ids_of_kind(crate::vocab::TokenKind::Neutral) {
            assert!(syn.of(i).is_empty());
        }
    }

    #[test]
    fn counter_fit_pulls_groups_together() {
        use crate::vocab::{Vocab, VocabSpec};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let v = Vocab::generate(
            VocabSpec {
                positive_groups: 2,
                negative_groups: 2,
                group_size: 3,
                neutral: 4,
                intensifiers: 0,
                negators: 0,
            },
            &mut rng,
        );
        use rand::Rng;
        let mut emb = Matrix::from_fn(v.len(), 8, |_, _| rng.gen_range(-1.0..1.0));
        let within = |emb: &Matrix| -> f64 {
            let m = v.group_members(0);
            deept_tensor::l2_norm(&deept_tensor::vec_sub(emb.row(m[0]), emb.row(m[1])))
        };
        let before = within(&emb);
        counter_fit(&mut emb, &v, 0.9);
        let after = within(&emb);
        assert!(
            after < 0.2 * before,
            "counter-fitting barely moved: {before} -> {after}"
        );
        // alpha = 1 collapses the group exactly.
        counter_fit(&mut emb, &v, 1.0);
        assert!(within(&emb) < 1e-12);
        // Ungrouped (neutral) tokens are untouched by construction: check
        // one stays where alpha=0 would leave it.
        let neutral = v.ids_of_kind(crate::vocab::TokenKind::Neutral)[0];
        let snapshot = emb.row(neutral).to_vec();
        counter_fit(&mut emb, &v, 0.5);
        assert_eq!(emb.row(neutral), &snapshot[..]);
    }

    #[test]
    fn artifact_round_trips_and_validates_key_fields() {
        let emb = Matrix::from_rows(&[&[0.0], &[0.01], &[0.02], &[5.0]]);
        let artifact = SynonymArtifact {
            fingerprint: "cafe1234".into(),
            k: 2,
            dist: 0.1,
            sets: SynonymSets::from_embeddings(&emb, 2, 0.1),
        };
        let dir = std::env::temp_dir().join(format!("deept-syn-test-{}", std::process::id()));
        let path = artifact.save(&dir).expect("save artifact");
        assert!(path.ends_with(SynonymArtifact::file_name("cafe1234", 2, 0.1)));
        let loaded = SynonymArtifact::load(&dir, "cafe1234", 2, 0.1).expect("load artifact");
        assert_eq!(loaded, artifact);
        // Key mismatches refuse to load: wrong fingerprint, k or dist.
        assert!(SynonymArtifact::load(&dir, "beef5678", 2, 0.1).is_none());
        assert!(SynonymArtifact::load(&dir, "cafe1234", 3, 0.1).is_none());
        assert!(SynonymArtifact::load(&dir, "cafe1234", 2, 0.2).is_none());
        // A tampered payload (fingerprint renamed on disk) is rejected.
        let stale = dir.join(SynonymArtifact::file_name("beef5678", 2, 0.1));
        std::fs::copy(&path, &stale).unwrap();
        assert!(SynonymArtifact::load(&dir, "beef5678", 2, 0.1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn combination_counting() {
        let emb = Matrix::from_rows(&[&[0.0], &[0.01], &[0.02], &[5.0]]);
        let syn = SynonymSets::from_embeddings(&emb, 2, 0.1);
        // tokens 0,1,2 mutually close (each has 2 synonyms), token 3 isolated.
        assert_eq!(syn.combinations(&[0, 3]), 3);
        assert_eq!(syn.combinations(&[0, 1, 2]), 27);
        let t = syn.truncated(1);
        assert_eq!(t.combinations(&[0, 1, 2]), 8);
    }
}
