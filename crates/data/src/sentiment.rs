//! Synthetic sentiment corpora standing in for SST and Yelp (DESIGN.md,
//! substitution 2).
//!
//! Sentences are sampled from a [`Vocab`]; the label is the sign of the
//! latent polarity score, with negators flipping and intensifiers scaling
//! the next sentiment word — enough compositional structure that a bag-of-
//! words model cannot solve the task perfectly, while a small Transformer
//! can.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::vocab::{TokenKind, Vocab, VocabSpec};

/// One labelled example: token ids and a binary sentiment label.
pub type Example = (Vec<usize>, usize);

/// A generated corpus with its vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentimentDataset {
    /// The vocabulary the token ids index into.
    pub vocab: Vocab,
    /// Training examples.
    pub train: Vec<Example>,
    /// Held-out examples.
    pub test: Vec<Example>,
}

/// Parameters of [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    /// Vocabulary shape.
    pub vocab: VocabSpec,
    /// Minimum sentence length.
    pub min_len: usize,
    /// Maximum sentence length.
    pub max_len: usize,
    /// Training set size.
    pub train: usize,
    /// Test set size.
    pub test: usize,
    /// Probability that a sampled token is a sentiment word.
    pub sentiment_density: f64,
    /// Minimum |score| for a sentence to be kept (label margin).
    pub margin: f64,
}

/// The SST-like preset: short sentences, compact vocabulary.
pub fn sst_spec() -> CorpusSpec {
    CorpusSpec {
        vocab: VocabSpec {
            positive_groups: 12,
            negative_groups: 12,
            group_size: 4,
            neutral: 60,
            intensifiers: 4,
            negators: 4,
        },
        min_len: 4,
        max_len: 12,
        train: 1400,
        test: 300,
        sentiment_density: 0.35,
        margin: 0.3,
    }
}

/// The Yelp-like preset: longer sentences, larger vocabulary.
pub fn yelp_spec() -> CorpusSpec {
    CorpusSpec {
        vocab: VocabSpec {
            positive_groups: 24,
            negative_groups: 24,
            group_size: 5,
            neutral: 160,
            intensifiers: 6,
            negators: 6,
        },
        min_len: 6,
        max_len: 16,
        train: 1800,
        test: 300,
        sentiment_density: 0.3,
        margin: 0.3,
    }
}

/// Computes the latent polarity score of a token sequence.
pub fn score(vocab: &Vocab, tokens: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut modifier = 1.0;
    for &t in tokens {
        let info = vocab.token(t);
        match info.kind {
            TokenKind::Positive | TokenKind::Negative => {
                total += modifier * info.polarity;
                modifier = 1.0;
            }
            TokenKind::Intensifier => modifier *= 1.8,
            TokenKind::Negator => modifier *= -1.0,
            TokenKind::Neutral => {}
        }
    }
    total
}

/// Generates a corpus from a spec.
pub fn generate(spec: CorpusSpec, rng: &mut impl Rng) -> SentimentDataset {
    let vocab = Vocab::generate(spec.vocab, rng);
    let sentiment: Vec<usize> = vocab
        .ids_of_kind(TokenKind::Positive)
        .into_iter()
        .chain(vocab.ids_of_kind(TokenKind::Negative))
        .collect();
    let neutral = vocab.ids_of_kind(TokenKind::Neutral);
    let modifiers: Vec<usize> = vocab
        .ids_of_kind(TokenKind::Intensifier)
        .into_iter()
        .chain(vocab.ids_of_kind(TokenKind::Negator))
        .collect();

    let sample_sentence = |rng: &mut dyn rand::RngCore| -> Example {
        loop {
            let len = rng.gen_range(spec.min_len..=spec.max_len);
            let mut toks = Vec::with_capacity(len);
            for _ in 0..len {
                let r: f64 = rng.gen();
                let pool = if r < spec.sentiment_density {
                    &sentiment
                } else if r < spec.sentiment_density + 0.08 && !modifiers.is_empty() {
                    &modifiers
                } else {
                    &neutral
                };
                toks.push(pool[rng.gen_range(0..pool.len())]);
            }
            let s = score(&vocab, &toks);
            if s.abs() >= spec.margin {
                return (toks, usize::from(s > 0.0));
            }
        }
    };

    let train: Vec<Example> = (0..spec.train).map(|_| sample_sentence(rng)).collect();
    let test: Vec<Example> = (0..spec.test).map(|_| sample_sentence(rng)).collect();
    SentimentDataset { vocab, train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn corpus_shapes_and_label_consistency() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let spec = sst_spec();
        let ds = generate(spec, &mut rng);
        assert_eq!(ds.train.len(), spec.train);
        assert_eq!(ds.test.len(), spec.test);
        for (toks, label) in ds.train.iter().chain(&ds.test) {
            assert!(toks.len() >= spec.min_len && toks.len() <= spec.max_len);
            let s = score(&ds.vocab, toks);
            assert!(s.abs() >= spec.margin);
            assert_eq!(*label, usize::from(s > 0.0));
        }
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = generate(sst_spec(), &mut rng);
        let pos = ds.train.iter().filter(|(_, l)| *l == 1).count();
        let frac = pos as f64 / ds.train.len() as f64;
        assert!((0.3..0.7).contains(&frac), "imbalanced labels: {frac}");
    }

    #[test]
    fn negators_flip_scores() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = generate(sst_spec(), &mut rng);
        let pos = ds.vocab.ids_of_kind(TokenKind::Positive)[0];
        let negator = ds.vocab.ids_of_kind(TokenKind::Negator)[0];
        let plain = score(&ds.vocab, &[pos]);
        let negated = score(&ds.vocab, &[negator, pos]);
        assert!(plain > 0.0 && (negated + plain).abs() < 1e-12);
    }

    #[test]
    fn intensifiers_scale_scores() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ds = generate(sst_spec(), &mut rng);
        let pos = ds.vocab.ids_of_kind(TokenKind::Positive)[0];
        let int = ds.vocab.ids_of_kind(TokenKind::Intensifier)[0];
        assert!(score(&ds.vocab, &[int, pos]) > score(&ds.vocab, &[pos]));
    }

    #[test]
    fn yelp_is_larger_than_sst() {
        let s = sst_spec();
        let y = yelp_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let vs = Vocab::generate(s.vocab, &mut rng);
        let vy = Vocab::generate(y.vocab, &mut rng);
        assert!(vy.len() > vs.len());
        assert!(y.max_len > s.max_len);
    }
}
