//! A synthetic sentiment vocabulary with planted synonym groups.
//!
//! This stands in for the SST / Yelp vocabularies (see DESIGN.md,
//! substitution 2): tokens carry a latent polarity used by the sentence
//! generator to produce learnable labels, and synonym *groups* of tokens
//! share (approximately) the same polarity, mirroring real synonyms.

use serde::{Deserialize, Serialize};

/// The grammatical/semantic role of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Carries positive sentiment.
    Positive,
    /// Carries negative sentiment.
    Negative,
    /// No sentiment contribution.
    Neutral,
    /// Scales the polarity of the next sentiment token ("very").
    Intensifier,
    /// Flips the polarity of the next sentiment token ("not").
    Negator,
}

/// One vocabulary entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenInfo {
    /// Surface form (synthetic, e.g. `pos3_2`).
    pub name: String,
    /// Latent polarity in `[−1, 1]`.
    pub polarity: f64,
    /// Role.
    pub kind: TokenKind,
    /// Planted synonym group id, if any.
    pub group: Option<usize>,
}

/// A synthetic vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<TokenInfo>,
    num_groups: usize,
}

/// Parameters of [`Vocab::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabSpec {
    /// Number of positive synonym groups.
    pub positive_groups: usize,
    /// Number of negative synonym groups.
    pub negative_groups: usize,
    /// Tokens per synonym group.
    pub group_size: usize,
    /// Number of neutral filler tokens.
    pub neutral: usize,
    /// Number of intensifier tokens.
    pub intensifiers: usize,
    /// Number of negator tokens.
    pub negators: usize,
}

impl Vocab {
    /// Generates a vocabulary: synonym groups of sentiment words, plus
    /// neutral fillers, intensifiers and negators.
    pub fn generate(spec: VocabSpec, rng: &mut impl rand::Rng) -> Self {
        let mut tokens = Vec::new();
        let mut group_id = 0;
        for sign in [1.0, -1.0] {
            let groups = if sign > 0.0 {
                spec.positive_groups
            } else {
                spec.negative_groups
            };
            let prefix = if sign > 0.0 { "pos" } else { "neg" };
            for g in 0..groups {
                let base: f64 = rng.gen_range(0.4..1.0) * sign;
                for m in 0..spec.group_size {
                    tokens.push(TokenInfo {
                        name: format!("{prefix}{g}_{m}"),
                        polarity: (base + rng.gen_range(-0.05..0.05)).clamp(-1.0, 1.0),
                        kind: if sign > 0.0 {
                            TokenKind::Positive
                        } else {
                            TokenKind::Negative
                        },
                        group: Some(group_id),
                    });
                }
                group_id += 1;
            }
        }
        for i in 0..spec.neutral {
            tokens.push(TokenInfo {
                name: format!("neu{i}"),
                polarity: 0.0,
                kind: TokenKind::Neutral,
                group: None,
            });
        }
        for i in 0..spec.intensifiers {
            tokens.push(TokenInfo {
                name: format!("int{i}"),
                polarity: 0.0,
                kind: TokenKind::Intensifier,
                group: None,
            });
        }
        for i in 0..spec.negators {
            tokens.push(TokenInfo {
                name: format!("not{i}"),
                polarity: 0.0,
                kind: TokenKind::Negator,
                group: None,
            });
        }
        Vocab {
            tokens,
            num_groups: group_id,
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of planted synonym groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Token metadata by id.
    pub fn token(&self, id: usize) -> &TokenInfo {
        &self.tokens[id]
    }

    /// Iterator over all tokens.
    pub fn iter(&self) -> impl Iterator<Item = &TokenInfo> {
        self.tokens.iter()
    }

    /// Ids of all members of a planted synonym group.
    pub fn group_members(&self, group: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.tokens[i].group == Some(group))
            .collect()
    }

    /// Ids of tokens of a given kind.
    pub fn ids_of_kind(&self, kind: TokenKind) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.tokens[i].kind == kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec() -> VocabSpec {
        VocabSpec {
            positive_groups: 4,
            negative_groups: 4,
            group_size: 3,
            neutral: 10,
            intensifiers: 2,
            negators: 2,
        }
    }

    #[test]
    fn counts_and_groups() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let v = Vocab::generate(spec(), &mut rng);
        assert_eq!(v.len(), 8 * 3 + 10 + 2 + 2);
        assert_eq!(v.num_groups(), 8);
        for g in 0..8 {
            assert_eq!(v.group_members(g).len(), 3);
        }
    }

    #[test]
    fn group_members_share_polarity_sign() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = Vocab::generate(spec(), &mut rng);
        for g in 0..v.num_groups() {
            let members = v.group_members(g);
            let signs: Vec<f64> = members
                .iter()
                .map(|&m| v.token(m).polarity.signum())
                .collect();
            assert!(signs.windows(2).all(|w| w[0] == w[1]));
            // Members are near-synonyms: polarities within 0.1 of each other.
            let pols: Vec<f64> = members.iter().map(|&m| v.token(m).polarity).collect();
            let spread = pols.iter().cloned().fold(f64::MIN, f64::max)
                - pols.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread <= 0.11);
        }
    }

    #[test]
    fn kinds_partition_vocabulary() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = Vocab::generate(spec(), &mut rng);
        let total: usize = [
            TokenKind::Positive,
            TokenKind::Negative,
            TokenKind::Neutral,
            TokenKind::Intensifier,
            TokenKind::Negator,
        ]
        .iter()
        .map(|&k| v.ids_of_kind(k).len())
        .sum();
        assert_eq!(total, v.len());
        assert!(v
            .ids_of_kind(TokenKind::Negator)
            .iter()
            .all(|&i| v.token(i).name.starts_with("not")));
    }
}
