//! Head-to-head verifier comparison on one trained network: DeepT-Fast,
//! DeepT-Precise, CROWN-Backward, CROWN-BaF and interval propagation,
//! with the randomized attack as an upper bound on the true radius.
//!
//! Run with `cargo run --release --example verifier_comparison`.

use deept::data::sentiment;
use deept::nn::train::{accuracy, train, TrainConfig};
use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept::verifier::attack::min_attack_radius;
use deept::verifier::crown::{self, CrownConfig, CrownInput};
use deept::verifier::deept as deept_v;
use deept::verifier::deept::DeepTConfig;
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::PNorm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut spec = sentiment::sst_spec();
    spec.train = 700;
    spec.test = 150;
    spec.max_len = 8;
    let ds = sentiment::generate(spec, &mut rng);

    let mut model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: ds.vocab.len(),
            max_len: 8,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    train(
        &mut model,
        &ds.train,
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    println!("test accuracy: {:.3}\n", accuracy(&model, &ds.test));

    let (tokens, label) = ds
        .test
        .iter()
        .find(|(t, l)| model.predict(t) == *l && t.len() >= 4)
        .expect("correctly classified sentence");
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(tokens);
    let position = 1;
    let p = PNorm::Linf;

    println!("{:<18} {:>12} {:>9}", "verifier", "radius", "time[ms]");
    let report = |name: &str, verify: &mut dyn FnMut(f64) -> bool| {
        let start = std::time::Instant::now();
        let r = max_certified_radius(verify, 0.005, 14);
        println!(
            "{name:<18} {r:>12.6} {:>9.1}",
            start.elapsed().as_secs_f64() * 1e3
        );
        r
    };

    let fast = DeepTConfig::fast(2000);
    report("DeepT-Fast", &mut |r| {
        deept_v::certify(&net, &t1_region(&emb, position, r, p), *label, &fast).certified
    });
    let precise = DeepTConfig::precise(192);
    report("DeepT-Precise", &mut |r| {
        deept_v::certify(&net, &t1_region(&emb, position, r, p), *label, &precise).certified
    });
    for (name, cfg) in [
        ("CROWN-Backward", CrownConfig::backward()),
        ("CROWN-BaF", CrownConfig::baf()),
        ("Interval", CrownConfig::interval()),
    ] {
        report(name, &mut |r| {
            crown::certify(&net, &CrownInput::t1(&emb, position, r, p), *label, &cfg).certified
        });
    }

    // Upper bound from the randomized attack.
    match min_attack_radius(&model, tokens, position, 2.0, p, 400, &mut rng) {
        Some(r) => println!("{:<18} {r:>12.6} (smallest successful attack)", "Attack"),
        None => println!("{:<18} {:>12} (no attack found up to 2.0)", "Attack", "-"),
    }
}
