//! The Figure 1 pipeline: certification against synonym attacks.
//!
//! A sentence is embedded; positions with synonyms get an abstract box
//! region covering every synonym embedding; DeepT proves in one shot that
//! *all* combinations keep the sentiment label — then enumeration confirms
//! it the slow way.
//!
//! Run with `cargo run --release --example synonym_certification`.

use deept::data::{sentiment, SynonymSets};
use deept::nn::train::{accuracy, train, TrainConfig};
use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept::verifier::deept::DeepTConfig;
use deept::verifier::synonym;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut spec = sentiment::sst_spec();
    spec.train = 700;
    spec.test = 200;
    spec.max_len = 8;
    let ds = sentiment::generate(spec, &mut rng);

    // Synonym-swap augmentation (the stand-in for robust training): swap
    // tokens within their planted synonym groups so the model learns to
    // treat group members interchangeably.
    let group_syn = SynonymSets::from_groups(&ds.vocab);
    let mut augmented = ds.train.clone();
    {
        use rand::Rng;
        for (tokens, label) in ds.train.iter() {
            let mut t = tokens.clone();
            for tok in t.iter_mut() {
                let syn = group_syn.of(*tok);
                if !syn.is_empty() && rng.gen_bool(0.5) {
                    *tok = syn[rng.gen_range(0..syn.len())];
                }
            }
            augmented.push((t, *label));
        }
    }
    let mut model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: ds.vocab.len(),
            max_len: 8,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    train(
        &mut model,
        &augmented,
        TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    println!("test accuracy: {:.3}", accuracy(&model, &ds.test));

    // Counter-fit the learned embeddings toward the planted synonym groups
    // (the paper's counter-fitted word vectors, ref. [40]) and let the
    // classifier adapt, so genuine synonyms sit close in embedding space.
    deept::data::synonyms::counter_fit(&mut model.token_embed, &ds.vocab, 0.9);
    train(
        &mut model,
        &augmented,
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 1e-3,
        },
        &mut rng,
    );
    deept::data::synonyms::counter_fit(&mut model.token_embed, &ds.vocab, 0.95);
    println!(
        "test accuracy after counter-fitting: {:.3}",
        accuracy(&model, &ds.test)
    );

    // Synonyms = nearest neighbours in the learned embedding space (the
    // construction of Alzantot et al., the paper's reference [1]).
    let synonyms = SynonymSets::from_embeddings(&model.token_embed, 4, 0.3);
    let cfg = DeepTConfig::fast(2000);

    let mut certified = 0;
    let mut shown = 0;
    let mut total = 0;
    for (tokens, label) in ds.test.iter().take(80) {
        if model.predict(tokens) != *label || synonyms.combinations(tokens) < 8 {
            continue;
        }
        total += 1;
        let cert = synonym::certify_deept(&model, tokens, &synonyms, *label, &cfg);
        if cert.certified {
            certified += 1;
            // Cross-check the certificate with exhaustive enumeration.
            let enu = synonym::enumerate(&model, tokens, &synonyms, *label, 1_000_000);
            assert!(enu.robust, "certified sentence flipped under enumeration!");
            if shown < 3 {
                shown += 1;
                let words: Vec<String> = tokens
                    .iter()
                    .map(|&t| {
                        let syns = synonyms.of(t).len();
                        let name = &ds.vocab.token(t).name;
                        if syns > 0 {
                            format!("{name}(+{syns})")
                        } else {
                            name.clone()
                        }
                    })
                    .collect();
                println!(
                    "certified \"{}\" — {} combinations, enumeration agrees ({} checked)",
                    words.join(" "),
                    synonyms.combinations(tokens),
                    enu.checked
                );
            }
        }
    }
    println!("certified {certified}/{total} sentences with synonym substitutions");
}
