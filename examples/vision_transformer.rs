//! Certifying a Vision Transformer (Appendix A.3): train a 1-layer ViT on
//! synthetic digit-like images and certify pixel-space ℓ∞ perturbations.
//!
//! Run with `cargo run --release --example vision_transformer`.

use deept::data::images;
use deept::nn::train::{accuracy, train, TrainConfig};
use deept::nn::{LayerNormKind, PatchConfig, TransformerConfig, VisionTransformer};
use deept::tensor::Matrix;
use deept::verifier::deept::{certify, DeepTConfig};
use deept::verifier::network::VerifiableTransformer;
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::{PNorm, Zonotope};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let spec = images::digits_spec(16, 20);
    let data = images::generate(spec, &mut rng);

    let patches = PatchConfig {
        image_h: 16,
        image_w: 16,
        patch: 4,
    };
    let mut vit = VisionTransformer::new(
        TransformerConfig {
            vocab_size: 0,
            max_len: patches.num_tokens(),
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: 1,
            num_classes: 10,
            layer_norm: LayerNormKind::NoStd,
        },
        patches,
        &mut rng,
    );
    train(
        &mut vit,
        &data,
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    println!("ViT accuracy: {:.3}", accuracy(&vit, &data));

    let net = VerifiableTransformer::from(&vit);
    let cfg = DeepTConfig::fast(2000);
    let mut shown = 0;
    for (pixels, label) in &data {
        if vit.predict(pixels) != *label || shown >= 5 {
            continue;
        }
        shown += 1;
        let r = max_certified_radius(
            |radius| {
                // A pixel-space ℓ∞ box, pushed exactly through the affine
                // patch embedding into the encoder's input space.
                let px = Matrix::row_vector(pixels.clone());
                let ball = Zonotope::from_lp_ball(&px, radius, PNorm::Linf, &[0]);
                let perm = patch_permutation(&vit.patches);
                let embedded = ball
                    .linear_vars(&perm, vit.patches.num_tokens(), vit.patches.patch_dim())
                    .matmul_right(&vit.patch_w)
                    .add_row_bias(vit.patch_b.row(0))
                    .add_const(&vit.pos_embed);
                certify(&net, &embedded, *label, &cfg).certified
            },
            0.005,
            14,
        );
        println!("image of class {label}: certified linf pixel radius {r:.5}");
    }
}

/// Permutation matrix from row-major pixels to flattened patches.
fn patch_permutation(cfg: &PatchConfig) -> Matrix {
    let n = cfg.image_h * cfg.image_w;
    let mut perm = Matrix::zeros(n, n);
    let mut unit = vec![0.0; n];
    for i in 0..n {
        unit[i] = 1.0;
        let p = cfg.patches(&unit);
        for (dst, &v) in p.as_slice().iter().enumerate() {
            if v != 0.0 {
                perm.set(dst, i, v);
            }
        }
        unit[i] = 0.0;
    }
    perm
}
