//! Quickstart: train a tiny Transformer sentiment classifier from scratch,
//! then certify one sentence against an ℓ2 perturbation of its second word
//! and find the maximum certified radius — with telemetry recording the
//! whole search.
//!
//! Run with `cargo run --release --example quickstart`.

use deept::data::sentiment;
use deept::nn::train::{accuracy, train, TrainConfig};
use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept::telemetry::TraceCollector;
use deept::verifier::deept::{certify, certify_probed, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius_probed;
use deept::zonotope::PNorm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    // 1. A small synthetic sentiment corpus (an SST stand-in).
    let mut spec = sentiment::sst_spec();
    spec.train = 600;
    spec.test = 150;
    spec.max_len = 8;
    let ds = sentiment::generate(spec, &mut rng);
    println!(
        "corpus: {} train / {} test, vocab {}",
        ds.train.len(),
        ds.test.len(),
        ds.vocab.len()
    );

    // 2. Train a 2-layer encoder Transformer from scratch.
    let mut model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: ds.vocab.len(),
            max_len: 8,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    train(
        &mut model,
        &ds.train,
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    println!("test accuracy: {:.3}", accuracy(&model, &ds.test));

    // 3. Certify a correctly classified sentence under threat model T1.
    let (tokens, label) = ds
        .test
        .iter()
        .find(|(t, l)| model.predict(t) == *l && t.len() >= 4)
        .expect("some test sentence classifies correctly");
    let words: Vec<&str> = tokens
        .iter()
        .map(|&t| ds.vocab.token(t).name.as_str())
        .collect();
    println!("sentence: {} (label {})", words.join(" "), label);

    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(tokens);
    let cfg = DeepTConfig::fast(2000);

    let result = certify(&net, &t1_region(&emb, 1, 0.01, PNorm::L2), *label, &cfg);
    println!(
        "radius 0.01 around word 2: certified = {} (margin {:.4})",
        result.certified,
        result.margins[1 - label]
    );

    // 4. Maximum certified radius via binary search, traced: the collector
    // records per-layer spans, noise-symbol counts and width statistics
    // without changing any certified result.
    let collector = TraceCollector::new();
    let r = max_certified_radius_probed(
        |radius| {
            certify_probed(
                &net,
                &t1_region(&emb, 1, radius, PNorm::L2),
                *label,
                &cfg,
                &collector,
            )
            .certified
        },
        0.01,
        16,
        &collector,
    );
    println!("maximum certified l2 radius for word 2: {r:.5}");

    // 5. Inspect where the time and precision went.
    let mut trace = collector.finish();
    trace.set_meta("example", "quickstart");
    trace.set_meta("verifier", "DeepT-Fast");
    trace.set_meta("norm", "l2");
    println!("\n{}", trace.render_summary(5));
    let path = std::path::Path::new("artifacts/results/quickstart_trace.json");
    match trace.save_json(path) {
        Ok(()) => println!("trace written to {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
