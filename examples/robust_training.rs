//! Embedding-noise augmentation and its (non-)effect on certified radii.
//!
//! The paper's §7 leaves *certified training* with the Multi-norm Zonotope
//! as future work. This example measures the naive alternative: fine-tune
//! with random ℓ2 noise on word embeddings (randomized-smoothing-style
//! augmentation) and compare certified T1 radii against the same model
//! without the fine-tune. The measured outcome is a **negative result that
//! matches the literature**: plain noise augmentation leaves the certified
//! radius essentially unchanged (or slightly worse) — improving *certified*
//! bounds needs a bound-aware training objective (IBP/COLT-style), exactly
//! why the paper points at [37]/[4] rather than augmentation.
//!
//! Run with `cargo run --release --example robust_training`.

use deept::data::sentiment;
use deept::nn::autodiff::Tape;
use deept::nn::train::{accuracy, train, Adam, TrainConfig};
use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
#[allow(unused_imports)]
use deept::tensor::Matrix;
use deept::verifier::deept::{certify, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::PNorm;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let mut spec = sentiment::sst_spec();
    spec.train = 600;
    spec.test = 150;
    spec.max_len = 8;
    let ds = sentiment::generate(spec, &mut rng);
    let config = TransformerConfig {
        vocab_size: ds.vocab.len(),
        max_len: 8,
        embed_dim: 16,
        num_heads: 4,
        hidden_dim: 32,
        num_layers: 2,
        num_classes: 2,
        layer_norm: LayerNormKind::NoStd,
    };

    // Baseline: plain training.
    let mut plain = TransformerClassifier::new(config.clone(), &mut rng);
    train(
        &mut plain,
        &ds.train,
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );

    // Robust: start from the *same trained weights* (so any change is
    // attributable to the noisy fine-tune), then run extra epochs where
    // each example's embedding is perturbed inside an ℓ2 ball before the
    // forward pass, with mini-batch gradient accumulation for stability.
    let mut robust = plain.clone();
    let _ = config;
    let noise_radius = 0.25;
    let mut opt = Adam::new(5e-4);
    for _epoch in 0..3 {
        for batch in ds.train.chunks(16) {
            let mut acc: Option<Vec<deept::tensor::Matrix>> = None;
            for (tokens, label) in batch {
                let mut emb = robust.embed(tokens);
                // Perturb one random position inside the ℓ2 ball (threat
                // model T1, matched to the certification queries below).
                let pos = rng.gen_range(0..tokens.len());
                let mut delta: Vec<f64> =
                    (0..emb.cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let n = deept::tensor::l2_norm(&delta).max(1e-12);
                let scale = noise_radius * rng.gen_range(0.3..1.0) / n;
                for (d, v) in delta.iter_mut().enumerate() {
                    *v *= scale;
                    *emb.at_mut(pos, d) += *v;
                }
                let mut tape = Tape::new();
                let (logits, pvars) = robust.logits_tape_from_embeddings(&mut tape, &emb);
                let loss = tape.cross_entropy_logits(logits, *label);
                tape.backward(loss);
                let grads: Vec<_> = pvars.iter().map(|&v| tape.grad(v).clone()).collect();
                match &mut acc {
                    None => acc = Some(grads),
                    Some(a) => {
                        for (s, g) in a.iter_mut().zip(&grads) {
                            s.add_assign(g);
                        }
                    }
                }
            }
            if let Some(mut grads) = acc {
                for g in &mut grads {
                    g.scale_assign(1.0 / batch.len() as f64);
                }
                // Embedding tables are not on these tapes (the perturbed
                // embedding enters as data), so only encoder/head weights
                // move.
                opt.step(robust.params_without_embeddings_mut(), &grads);
            }
        }
    }

    println!("plain  accuracy: {:.3}", accuracy(&plain, &ds.test));
    println!("robust accuracy: {:.3}", accuracy(&robust, &ds.test));

    // Certified radii on shared sentences.
    let cfg = DeepTConfig::fast(2000);
    let mut sum_plain = 0.0;
    let mut sum_robust = 0.0;
    let mut count = 0;
    for (tokens, label) in ds.test.iter().take(40) {
        if plain.predict(tokens) != *label || robust.predict(tokens) != *label {
            continue;
        }
        count += 1;
        for (model, acc) in [(&plain, &mut sum_plain), (&robust, &mut sum_robust)] {
            let net = VerifiableTransformer::from(model);
            let emb = model.embed(tokens);
            *acc += max_certified_radius(
                |r| certify(&net, &t1_region(&emb, 1, r, PNorm::L2), *label, &cfg).certified,
                0.01,
                12,
            );
        }
        if count >= 8 {
            break;
        }
    }
    let (avg_plain, avg_robust) = (sum_plain / count as f64, sum_robust / count as f64);
    println!("avg certified l2 radius over {count} sentences:");
    println!("  plain      {avg_plain:.4}");
    println!(
        "  augmented  {avg_robust:.4}  ({:+.0}%)",
        100.0 * (avg_robust / avg_plain - 1.0)
    );
    println!(
        "(expected: ~no change — plain noise augmentation does not tighten certified \
         bounds; that needs bound-aware certified training, the paper's future work)"
    );
}
