//! The Figure 4 Multi-norm Zonotope, rendered as ASCII art.
//!
//! `x = 4 + φ₁ + φ₂ − ε₁ + 2ε₂`, `y = 3 + φ₁ + φ₂ + ε₁ + ε₂` with
//! `‖φ‖₂ ≤ 1` and `ε ∈ [−1, 1]²`. The plot shows the multi-norm region (`·`)
//! and, inside it, the classical zonotope obtained by dropping the φ
//! symbols (`#`) — illustrating the extra expressiveness of the ℓ2-bounded
//! symbols.
//!
//! Run with `cargo run --release --example figure4_zonotope`.

use deept::tensor::Matrix;
use deept::zonotope::{PNorm, Zonotope};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let full = Zonotope::from_parts(
        2,
        1,
        vec![4.0, 3.0],
        Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]),
        Matrix::from_rows(&[&[-1.0, 2.0], &[1.0, 1.0]]),
        PNorm::L2,
    );
    let classical = Zonotope::from_parts(
        2,
        1,
        vec![4.0, 3.0],
        Matrix::zeros(2, 0),
        Matrix::from_rows(&[&[-1.0, 2.0], &[1.0, 1.0]]),
        PNorm::L2,
    );
    let (lo, hi) = full.bounds();
    println!(
        "x ∈ [{:.3}, {:.3}], y ∈ [{:.3}, {:.3}]",
        lo[0], hi[0], lo[1], hi[1]
    );

    // Rasterize by sampling noise instantiations of both regions.
    const W: usize = 64;
    const H: usize = 28;
    let (x0, x1) = (-0.5f64, 8.5f64);
    let (y0, y1) = (-0.5f64, 6.5f64);
    let mut grid = vec![[0u8; W]; H];
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut paint = |z: &Zonotope, mark: u8, rng: &mut ChaCha8Rng| {
        for _ in 0..300_000 {
            let (mut phi, mut eps) = z.sample_noise(rng);
            // Push samples outward for better coverage of the boundary.
            if rng.gen_bool(0.5) {
                let n = deept::tensor::lp_norm(&phi, 2.0);
                if n > 0.0 {
                    for p in &mut phi {
                        *p /= n;
                    }
                }
                for e in &mut eps {
                    *e = e.signum();
                }
            }
            let v = z.evaluate(&phi, &eps);
            let cx = ((v[0] - x0) / (x1 - x0) * (W as f64 - 1.0)).round();
            let cy = ((v[1] - y0) / (y1 - y0) * (H as f64 - 1.0)).round();
            if (0.0..W as f64).contains(&cx) && (0.0..H as f64).contains(&cy) {
                let cell = &mut grid[H - 1 - cy as usize][cx as usize];
                *cell = (*cell).max(mark);
            }
        }
    };
    paint(&full, 1, &mut rng);
    paint(&classical, 2, &mut rng);

    for row in &grid {
        let line: String = row
            .iter()
            .map(|&c| match c {
                0 => ' ',
                1 => '·',
                _ => '#',
            })
            .collect();
        println!("{line}");
    }
    println!("·  multi-norm zonotope (φ symbols, ‖φ‖₂ ≤ 1)    # classical zonotope (ε only)");
}
