#!/usr/bin/env bash
# Criterion smoke run of the kernel-sensitive benches (quick mode), then a
# summary written to BENCH_2.json: per-bench median nanoseconds plus the
# speedup of the optimized (blocked + parallel) kernels over the naive
# reference path measured in the same process via DEEPT_KERNEL routing.
# A server-throughput smoke (requests/sec, cache-hit speedup against a live
# `deept serve` instance) follows, written to BENCH_3.json.
#
# Worker count defaults to 4; override with DEEPT_THREADS=N.
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${DEEPT_THREADS:-4}"
export DEEPT_THREADS="$THREADS"

echo "== criterion quick run (DEEPT_THREADS=$THREADS) =="
cargo bench -p deept-bench --bench dot_product -- --quick --noplot
cargo bench -p deept-bench --bench layer_propagation -- --quick --noplot

echo "== summarizing target/criterion -> BENCH_2.json =="
python3 - "$THREADS" <<'EOF'
import json
import sys
from pathlib import Path

threads = int(sys.argv[1])
root = Path("target/criterion")

def median_ns(vdir):
    est = json.loads((vdir / "new" / "estimates.json").read_text())
    return est["median"]["point_estimate"]

benches = {}
for group in ("dot_product", "layer_propagation"):
    gdir = root / group
    if not gdir.is_dir():
        continue
    for fdir in sorted(p for p in gdir.iterdir() if p.is_dir() and p.name != "report"):
        for vdir in sorted(p for p in fdir.iterdir() if p.is_dir() and p.name != "report"):
            bid = f"{group}/{fdir.name}/{vdir.name}"
            benches[bid] = {"median_ns": median_ns(vdir)}

# Pair every optimized bench with its naive twin (`<fn>_naive` in the same
# group, or the bare `naive` function for layer_propagation).
for bid, entry in benches.items():
    group, func, value = bid.split("/")
    if func == "naive" or func.endswith("_naive"):
        continue
    for candidate in (f"{group}/{func}_naive/{value}", f"{group}/naive/{value}"):
        if candidate in benches:
            entry["speedup_vs_naive"] = round(
                benches[candidate]["median_ns"] / entry["median_ns"], 3
            )
            break

out = {"threads": threads, "benches": benches}
Path("BENCH_2.json").write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
print(json.dumps(out, indent=2, sort_keys=True))
EOF

echo "bench smoke written to BENCH_2.json"

# ---------------------------------------------------------------------------
# Server-throughput smoke: start `deept serve` against a freshly exported
# checkpoint, then measure uncached latency, cached (bitwise-replay) latency
# and the resulting cache-hit speedup over the JSON-lines TCP protocol.
# Results land in BENCH_3.json.
# ---------------------------------------------------------------------------
SERVE_ADDR="${DEEPT_SERVE_ADDR:-127.0.0.1:17979}"

echo "== server throughput smoke ($SERVE_ADDR, DEEPT_THREADS=$THREADS) =="
cargo build --release --bin deept
target/release/deept export-model \
  --out artifacts/models/bench_smoke.json --layers 1 --epochs 1 --seed 7
target/release/deept serve --addr "$SERVE_ADDR" --workers "$THREADS" \
  --model smoke=artifacts/models/bench_smoke.json &
SERVE_PID=$!

python3 - "$THREADS" "$SERVE_ADDR" <<'EOF'
import json
import socket
import sys
import time
from pathlib import Path

threads = int(sys.argv[1])
host, port = sys.argv[2].rsplit(":", 1)
addr = (host, int(port))

def connect():
    stop = time.time() + 30
    while True:
        try:
            return socket.create_connection(addr, timeout=10)
        except OSError:
            if time.time() > stop:
                raise
            time.sleep(0.1)

sock = connect()
f = sock.makefile("rwb")

def rpc(obj):
    f.write((json.dumps(obj) + "\n").encode())
    f.flush()
    line = f.readline()
    if not line:
        raise RuntimeError("server closed the connection")
    return json.loads(line)

assert rpc({"type": "status"})["type"] == "status"

def certify(eps):
    r = rpc({"type": "certify", "model_id": "smoke", "tokens": [1, 2, 3, 4],
             "eps": eps, "norm": "l2", "variant": "fast"})
    assert r["type"] == "certify", r
    return r

certify(0.011)  # warm-up

# Uncached latency: distinct eps values, every request runs the verifier.
eps_values = [0.001 + 0.0001 * i for i in range(20)]
t0 = time.perf_counter()
for eps in eps_values:
    assert not certify(eps)["cached"]
uncached_s = (time.perf_counter() - t0) / len(eps_values)

# Cached latency: replay one key; every hit is a bitwise-identical answer.
reps = 200
t0 = time.perf_counter()
for _ in range(reps):
    assert certify(eps_values[0])["cached"]
cached_s = (time.perf_counter() - t0) / reps

out = {
    "threads": threads,
    "uncached_ms": round(uncached_s * 1e3, 3),
    "cached_ms": round(cached_s * 1e3, 3),
    "cache_hit_speedup": round(uncached_s / cached_s, 1),
    "uncached_requests_per_sec": round(1.0 / uncached_s, 1),
    "cached_requests_per_sec": round(1.0 / cached_s, 1),
}
assert rpc({"type": "shutdown"})["type"] == "shutting_down"
Path("BENCH_3.json").write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
print(json.dumps(out, indent=2, sort_keys=True))
EOF

wait "$SERVE_PID"
echo "server smoke written to BENCH_3.json"

# ---------------------------------------------------------------------------
# ε-storage smoke: time full abstract propagation under both generator
# layouts (monolithic dense matrix vs. blocked diagonal store with lazy
# densification) and record speedup, peak ε columns and resident generator
# bytes. Results land in BENCH_5.json; the gate below requires the blocked
# layout to be at least 1.3x faster than dense on the hot propagation path.
# ---------------------------------------------------------------------------
echo "== eps-storage smoke (DEEPT_THREADS=$THREADS) =="
# Shape rationale: a wide FFN (hidden 128) with a perturbation radius large
# enough (0.2) that many ReLU neurons are unstable, so each layer appends a
# long fresh-symbol tail — the regime the blocked layout is built for. The
# logit bounds stay finite (about +/-4.5) and are bitwise identical to the
# dense layout's.
target/release/deept bench-eps --out BENCH_5.json --repeats 7 \
  --len 4 --embed 16 --hidden 128 --layers 2 --budget 100 --radius 0.2

python3 - <<'EOF'
import json
from pathlib import Path

out = json.loads(Path("BENCH_5.json").read_text())
speedup = out["speedup_vs_dense"]
dense = out["modes"]["dense"]
blocked = out["modes"]["blocked"]
assert out["bounds_bitwise_identical"], "dense/blocked bounds diverged"
assert speedup >= 1.3, f"blocked eps store speedup {speedup} < 1.3x over dense"
assert (
    blocked["peak_resident_generator_bytes"] < dense["peak_resident_generator_bytes"]
), "blocked layout must reduce peak resident generator bytes"
print(
    f"eps-storage gate: speedup {speedup}x, resident bytes "
    f"{dense['peak_resident_generator_bytes']} -> {blocked['peak_resident_generator_bytes']}"
)
EOF

echo "eps-storage smoke written to BENCH_5.json"

# ---------------------------------------------------------------------------
# Kernel-dispatch smoke: benchmark the naive/blocked/simd ladder on the
# vectorized microkernels and on full abstract propagation, plus the f32
# generator-storage memory ratio. Results land in BENCH_7.json. Gates: the
# simd ISA kernels must be >= 2x blocked on at least one microbench and
# >= 1.15x end-to-end, all three kernel modes must produce bitwise-identical
# logit bounds at f64, f32 storage must roughly halve (>= 1.8x) peak resident
# generator bytes while its bounds contain the f64 bounds.
# ---------------------------------------------------------------------------
echo "== kernel-dispatch smoke (DEEPT_THREADS=$THREADS) =="
target/release/deept bench-kernels --out BENCH_7.json

python3 - <<'EOF'
import json
from pathlib import Path

out = json.loads(Path("BENCH_7.json").read_text())
best_micro = out["best_micro_speedup_simd_vs_blocked"]
e2e = out["end_to_end"]["speedup_simd_vs_blocked"]
f32 = out["f32_storage"]
assert out["bounds_bitwise_identical_across_kernels"], (
    "naive/blocked/simd logit bounds diverged at f64"
)
assert best_micro >= 2.0, f"best simd microbench speedup {best_micro} < 2x over blocked"
assert e2e >= 1.15, f"end-to-end simd speedup {e2e} < 1.15x over blocked"
assert f32["memory_ratio_f64_over_f32"] >= 1.8, (
    f"f32 generator storage ratio {f32['memory_ratio_f64_over_f32']} < 1.8x"
)
assert f32["f32_bounds_contain_f64"], "f32 bounds failed to contain the f64 bounds"
print(
    f"kernel gate ({out['config']['isa']}): best micro {best_micro}x, "
    f"end-to-end {e2e}x, f32 memory ratio {f32['memory_ratio_f64_over_f32']}x"
)
EOF

echo "kernel-dispatch smoke written to BENCH_7.json"

# ---------------------------------------------------------------------------
# Metrics-overhead gate: abstract propagation timed with the metrics gate on
# and off (interleaved, median of N). The logit bounds must be bitwise
# identical across the gate and the median slowdown must stay under 2%.
# ---------------------------------------------------------------------------
echo "== metrics-overhead gate (DEEPT_THREADS=$THREADS) =="
target/release/deept bench-metrics --repeats 9 --max-ratio 1.02 \
  --out bench_metrics.json

# ---------------------------------------------------------------------------
# Load-generator smoke: drive a live `deept serve --metrics-addr` with the
# closed-loop generator, validate the Prometheus scrape mid-run, and write
# the latency/throughput report to BENCH_6.json. A single-request run then
# checks the phase decomposition: queue-wait + cache-lookup + propagation
# must account for at least 90% of the server-side end-to-end time.
# ---------------------------------------------------------------------------
LOADGEN_ADDR="${DEEPT_LOADGEN_ADDR:-127.0.0.1:17980}"
METRICS_ADDR="${DEEPT_METRICS_ADDR:-127.0.0.1:17981}"

echo "== loadgen smoke ($LOADGEN_ADDR, metrics on $METRICS_ADDR) =="
target/release/deept serve --addr "$LOADGEN_ADDR" --metrics-addr "$METRICS_ADDR" \
  --workers "$THREADS" --model smoke=artifacts/models/bench_smoke.json &
LOADGEN_SERVE_PID=$!

for _ in $(seq 50); do
  target/release/deept request --addr "$LOADGEN_ADDR" --status >/dev/null 2>&1 && break
  sleep 0.2
done

target/release/deept loadgen --addr "$LOADGEN_ADDR" --model-id smoke \
  --tokens "1 2 3 4" --concurrency "$THREADS" --duration-s 5 \
  --out BENCH_6.json >/dev/null

curl -s "http://$METRICS_ADDR/metrics" | python3 scripts/check_metrics.py \
  deept_serve_queue_wait_seconds deept_serve_propagation_seconds \
  deept_serve_request_seconds deept_serve_cache_hits_total \
  deept_serve_overloaded_total deept_serve_deadline_timeouts_total \
  deept_serve_model_requests_total

target/release/deept loadgen --addr "$LOADGEN_ADDR" --model-id smoke \
  --tokens "1 2 3 4" --concurrency 1 --requests 1 \
  --out BENCH_6_single.json >/dev/null

target/release/deept request --addr "$LOADGEN_ADDR" --shutdown >/dev/null
wait "$LOADGEN_SERVE_PID"

python3 - <<'EOF'
import json
from pathlib import Path

report = json.loads(Path("BENCH_6.json").read_text())
assert report["ok"] > 0, "loadgen completed no certifications"
lat = report["latency"]
print(
    f"loadgen gate: {report['ok']} ok, {report['certified_queries_per_sec']:.1f} "
    f"certified q/s, p50 {lat['p50_s']*1e3:.2f} ms, p95 {lat['p95_s']*1e3:.2f} ms, "
    f"p99 {lat['p99_s']*1e3:.2f} ms"
)

single = json.loads(Path("BENCH_6_single.json").read_text())
phases = single["phases"]
phase_sum = sum(
    phases[k]["mean_s"] * phases[k]["count"]
    for k in ("queue_wait", "cache_lookup", "propagation")
    if phases.get(k)
)
total = phases["total"]["mean_s"] * phases["total"]["count"]
ratio = phase_sum / total
assert 0.9 <= ratio <= 1.001, (
    f"phase decomposition {phase_sum*1e3:.3f} ms accounts for {ratio:.1%} of the "
    f"{total*1e3:.3f} ms end-to-end time (need >= 90%)"
)
print(f"phase-decomposition gate: phases sum to {ratio:.1%} of end-to-end")
EOF

echo "loadgen smoke written to BENCH_6.json"

# ---------------------------------------------------------------------------
# Batch-fusion smoke: the identical wave-structured closed-loop load driven
# at a server with request coalescing and batch fusion disabled (--no-fuse),
# then at the default fused pipeline. The wave shape — groups of identical
# requests in flight together — is the workload fusion exists for: the
# fused server answers each group with one propagation where the unfused
# one runs them all. The gate requires the fused server to certify at
# least 1.3x more queries per second; results land in BENCH_9.json.
# ---------------------------------------------------------------------------
FUSE_ADDR="${DEEPT_FUSE_ADDR:-127.0.0.1:17982}"

echo "== batch-fusion smoke ($FUSE_ADDR, DEEPT_THREADS=$THREADS) =="

fusion_run() { # $1: extra serve flags, $2: loadgen report path
  # shellcheck disable=SC2086  # $1 is deliberately word-split flags
  target/release/deept serve --addr "$FUSE_ADDR" --workers "$THREADS" \
    --model smoke=artifacts/models/bench_smoke.json $1 &
  local serve_pid=$!
  for _ in $(seq 50); do
    target/release/deept request --addr "$FUSE_ADDR" --status >/dev/null 2>&1 && break
    sleep 0.2
  done
  target/release/deept loadgen --addr "$FUSE_ADDR" --model-id smoke \
    --tokens "1 2 3 4" --concurrency 6 --wave 6 --requests 120 \
    --out "$2" >/dev/null
  target/release/deept request --addr "$FUSE_ADDR" --shutdown >/dev/null
  wait "$serve_pid"
}

fusion_run "--no-fuse" bench_fusion_unfused.json
fusion_run "" bench_fusion_fused.json

python3 - "$THREADS" <<'EOF'
import json
import sys
from pathlib import Path

threads = int(sys.argv[1])
unfused = json.loads(Path("bench_fusion_unfused.json").read_text())
fused = json.loads(Path("bench_fusion_fused.json").read_text())
for name, run in (("unfused", unfused), ("fused", fused)):
    assert run["ok"] == run["sent"], f"{name} run lost requests: {run}"

def digest(run):
    lat = run["latency"]
    return {
        "certified_queries_per_sec": round(run["certified_queries_per_sec"], 1),
        "cached": run["cached"],
        "p50_ms": round(lat["p50_s"] * 1e3, 3),
        "p95_ms": round(lat["p95_s"] * 1e3, 3),
        "p99_ms": round(lat["p99_s"] * 1e3, 3),
    }

speedup = fused["certified_queries_per_sec"] / unfused["certified_queries_per_sec"]
out = {
    "threads": threads,
    "requests": 120,
    "concurrency": 6,
    "wave": 6,
    "unfused": digest(unfused),
    "fused": digest(fused),
    "speedup_fused_vs_unfused": round(speedup, 3),
}
Path("BENCH_9.json").write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
print(json.dumps(out, indent=2, sort_keys=True))
assert speedup >= 1.3, (
    f"fused throughput {fused['certified_queries_per_sec']:.1f} q/s is only "
    f"{speedup:.2f}x the unfused {unfused['certified_queries_per_sec']:.1f} q/s (need >= 1.3x)"
)
print(f"fusion gate: fused serving is {speedup:.2f}x unfused on wave load")
EOF

echo "fusion smoke written to BENCH_9.json"

# ---------------------------------------------------------------------------
# State-cache smoke (incremental certification): an interactive editing
# session — fresh queries, immediate retries and synonym sweeps, generated
# deterministically by `loadgen --edit-stream` — replayed twice against a
# server with the result cache OFF (--cache 0), so every request runs the
# verifier. Run 1 starts cold and populates the cross-request zonotope
# state cache; run 2 replays the byte-identical stream and resumes every
# propagation from cached layer snapshots. The gate requires the warm
# replay to certify at least 2x more queries per second; results land in
# BENCH_10.json together with the server's state-cache counters.
# ---------------------------------------------------------------------------
STATE_ADDR="${DEEPT_STATE_ADDR:-127.0.0.1:17983}"

echo "== state-cache smoke ($STATE_ADDR, DEEPT_THREADS=$THREADS) =="
target/release/deept export-model \
  --out artifacts/models/bench_state.json --layers 3 --epochs 1 --seed 11

target/release/deept serve --addr "$STATE_ADDR" --workers "$THREADS" \
  --cache 0 --state-cache-mb 64 \
  --model smoke=artifacts/models/bench_state.json &
STATE_SERVE_PID=$!
for _ in $(seq 50); do
  target/release/deept request --addr "$STATE_ADDR" --status >/dev/null 2>&1 && break
  sleep 0.2
done

state_run() { # $1: loadgen report path
  target/release/deept loadgen --addr "$STATE_ADDR" --model-id smoke \
    --tokens "1 2 3 4" --concurrency "$THREADS" --edit-stream --requests 120 \
    --out "$1" >/dev/null
}

state_run bench_state_cold.json   # run 1: cold start, fills the state cache
state_run bench_state_warm.json   # run 2: identical stream, resumes warm

target/release/deept request --addr "$STATE_ADDR" --status > bench_state_status.json
target/release/deept request --addr "$STATE_ADDR" --shutdown >/dev/null
wait "$STATE_SERVE_PID"

python3 - "$THREADS" <<'EOF'
import json
import sys
from pathlib import Path

threads = int(sys.argv[1])
cold = json.loads(Path("bench_state_cold.json").read_text())
warm = json.loads(Path("bench_state_warm.json").read_text())
status = json.loads(Path("bench_state_status.json").read_text())
for name, run in (("cold", cold), ("warm", warm)):
    assert run["ok"] == run["sent"], f"{name} run lost requests: {run}"
    assert run["cached"] == 0, f"{name} run hit the result cache (must be off): {run}"

def digest(run):
    lat = run["latency"]
    return {
        "certified_queries_per_sec": round(run["certified_queries_per_sec"], 1),
        "p50_ms": round(lat["p50_s"] * 1e3, 3),
        "p95_ms": round(lat["p95_s"] * 1e3, 3),
        "p99_ms": round(lat["p99_s"] * 1e3, 3),
    }

speedup = warm["certified_queries_per_sec"] / cold["certified_queries_per_sec"]
out = {
    "threads": threads,
    "requests": 120,
    "cold": digest(cold),
    "warm": digest(warm),
    "speedup_warm_vs_cold": round(speedup, 3),
    "state_cache": {
        "hits": status["state_cache_hits"],
        "misses": status["state_cache_misses"],
        "evictions": status["state_cache_evictions"],
        "resident_bytes": status["state_cache_resident_bytes"],
        "resumed_layers": status["state_cache_resumed_layers"],
    },
}
Path("BENCH_10.json").write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
print(json.dumps(out, indent=2, sort_keys=True))
assert status["state_cache_hits"] > 0, "warm replay never hit the state cache"
assert status["state_cache_resumed_layers"] > 0, "warm replay never resumed a layer"
assert speedup >= 2.0, (
    f"warm replay {warm['certified_queries_per_sec']:.1f} q/s is only "
    f"{speedup:.2f}x the cold {cold['certified_queries_per_sec']:.1f} q/s (need >= 2x)"
)
print(f"state-cache gate: warm serving is {speedup:.2f}x cold on an edit stream")
EOF

echo "state-cache smoke written to BENCH_10.json"
