#!/usr/bin/env bash
# Criterion smoke run of the kernel-sensitive benches (quick mode), then a
# summary written to BENCH_2.json: per-bench median nanoseconds plus the
# speedup of the optimized (blocked + parallel) kernels over the naive
# reference path measured in the same process via DEEPT_KERNEL routing.
#
# Worker count defaults to 4; override with DEEPT_THREADS=N.
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${DEEPT_THREADS:-4}"
export DEEPT_THREADS="$THREADS"

echo "== criterion quick run (DEEPT_THREADS=$THREADS) =="
cargo bench -p deept-bench --bench dot_product -- --quick --noplot
cargo bench -p deept-bench --bench layer_propagation -- --quick --noplot

echo "== summarizing target/criterion -> BENCH_2.json =="
python3 - "$THREADS" <<'EOF'
import json
import sys
from pathlib import Path

threads = int(sys.argv[1])
root = Path("target/criterion")

def median_ns(vdir):
    est = json.loads((vdir / "new" / "estimates.json").read_text())
    return est["median"]["point_estimate"]

benches = {}
for group in ("dot_product", "layer_propagation"):
    gdir = root / group
    if not gdir.is_dir():
        continue
    for fdir in sorted(p for p in gdir.iterdir() if p.is_dir() and p.name != "report"):
        for vdir in sorted(p for p in fdir.iterdir() if p.is_dir() and p.name != "report"):
            bid = f"{group}/{fdir.name}/{vdir.name}"
            benches[bid] = {"median_ns": median_ns(vdir)}

# Pair every optimized bench with its naive twin (`<fn>_naive` in the same
# group, or the bare `naive` function for layer_propagation).
for bid, entry in benches.items():
    group, func, value = bid.split("/")
    if func == "naive" or func.endswith("_naive"):
        continue
    for candidate in (f"{group}/{func}_naive/{value}", f"{group}/naive/{value}"):
        if candidate in benches:
            entry["speedup_vs_naive"] = round(
                benches[candidate]["median_ns"] / entry["median_ns"], 3
            )
            break

out = {"threads": threads, "benches": benches}
Path("BENCH_2.json").write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
print(json.dumps(out, indent=2, sort_keys=True))
EOF

echo "bench smoke written to BENCH_2.json"
