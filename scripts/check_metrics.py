#!/usr/bin/env python3
"""Validate Prometheus text exposition (format 0.0.4) read from stdin.

Checks:
  * every line is a comment (# HELP / # TYPE) or a `name{labels} value` sample;
  * HELP and TYPE appear at most once per metric family, before its samples;
  * TYPE is one of counter / gauge / histogram;
  * counter and histogram sample values are finite and non-negative;
  * histogram families have cumulative, monotone `le` buckets ending in
    `le="+Inf"`, and the +Inf bucket equals `<name>_count`;
  * any metric names passed as arguments are present.

Exits nonzero with a diagnostic on the first violation, so CI can pipe a
scrape straight through it:

    curl -s http://127.0.0.1:9090/metrics | scripts/check_metrics.py \
        deept_serve_queue_wait_seconds deept_serve_cache_hits_total
"""

import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(line_no, line, why):
    sys.exit(f"check_metrics: line {line_no}: {why}\n  {line!r}")


def parse_value(raw, line_no, line):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        fail(line_no, line, f"unparseable sample value {raw!r}")


def parse_labels(raw, line_no, line):
    if not raw:
        return {}
    labels = {}
    consumed = 0
    for m in LABEL_RE.finditer(raw):
        labels[m.group(1)] = m.group(2)
        consumed = m.end()
        if consumed < len(raw) and raw[consumed] == ",":
            consumed += 1
    if consumed != len(raw):
        fail(line_no, line, f"malformed label block {raw!r}")
    return labels


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    required = set(sys.argv[1:])
    text = sys.stdin.read()
    helps, types = {}, {}
    # family -> label-key (non-le labels) -> list of (le, cumulative count)
    buckets = {}
    counts = {}
    seen_samples = set()

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(line_no, line, "comment is neither # HELP nor # TYPE")
            kind, name = parts[1], parts[2]
            table = helps if kind == "HELP" else types
            if name in table:
                fail(line_no, line, f"duplicate # {kind} for {name}")
            if name in seen_samples:
                fail(line_no, line, f"# {kind} after samples of {name}")
            if kind == "TYPE":
                if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                    fail(line_no, line, "TYPE must be counter, gauge or histogram")
                table[name] = parts[3]
            else:
                table[name] = parts[3] if len(parts) == 4 else ""
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            fail(line_no, line, "not a valid sample line")
        name = m.group("name")
        labels = parse_labels(m.group("labels"), line_no, line)
        value = parse_value(m.group("value"), line_no, line)
        family = family_of(name)
        seen_samples.add(family)

        ftype = types.get(family)
        if ftype in ("counter", "histogram") and not value >= 0:
            fail(line_no, line, f"{ftype} sample must be non-negative")
        if ftype == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                fail(line_no, line, "histogram bucket without an le label")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            le = parse_value(labels["le"], line_no, line)
            buckets.setdefault(family, {}).setdefault(key, []).append(
                (le, value, line_no)
            )
        if ftype == "histogram" and name.endswith("_count"):
            key = tuple(sorted(labels.items()))
            counts.setdefault(family, {})[key] = (value, line_no)

    for family, series in buckets.items():
        for key, entries in series.items():
            les = [le for le, _, _ in entries]
            if les != sorted(les):
                sys.exit(f"check_metrics: {family}{dict(key)}: le values not sorted")
            cumulative = [c for _, c, _ in entries]
            if cumulative != sorted(cumulative):
                sys.exit(
                    f"check_metrics: {family}{dict(key)}: bucket counts not cumulative"
                )
            if not entries or not math.isinf(entries[-1][0]):
                sys.exit(f"check_metrics: {family}{dict(key)}: missing le=\"+Inf\"")
            total = counts.get(family, {}).get(key)
            if total is None:
                sys.exit(f"check_metrics: {family}{dict(key)}: missing _count sample")
            if total[0] != entries[-1][1]:
                sys.exit(
                    f"check_metrics: {family}{dict(key)}: +Inf bucket "
                    f"{entries[-1][1]} != _count {total[0]}"
                )

    missing = required - seen_samples
    if missing:
        sys.exit(f"check_metrics: required metrics absent: {sorted(missing)}")
    families = len(seen_samples)
    print(f"check_metrics: OK ({families} families, {len(buckets)} histograms)")


if __name__ == "__main__":
    main()
