#!/usr/bin/env bash
# The single local gate: formatting, lints and tests, exactly as CI runs
# them (.github/workflows/ci.yml). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "all checks passed"
