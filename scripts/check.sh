#!/usr/bin/env bash
# The single local gate: formatting, lints and tests, exactly as CI runs
# them (.github/workflows/ci.yml). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
# --workspace picks up every crates/* member, including deept-serve; its
# library code additionally carries #![deny(clippy::print_stdout)].
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "all checks passed"
