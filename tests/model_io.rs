//! Persistence round-trips: a model saved and reloaded must verify
//! identically (bit-for-bit margins).

mod common;

use deept::verifier::deept::{certify, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::zonotope::PNorm;

#[test]
fn verification_is_identical_after_reload() {
    let (model, ds) = common::trained_transformer(2, 40);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let dir = std::env::temp_dir().join(format!("deept-io-{}", std::process::id()));
    let path = dir.join("model.json");
    deept::nn::io::save_json(&model, &path).expect("save");
    let reloaded: deept::nn::TransformerClassifier = deept::nn::io::load_json(&path).expect("load");
    assert_eq!(model, reloaded);

    let cfg = DeepTConfig::fast(1500);
    let emb = model.embed(&tokens);
    let r1 = certify(
        &VerifiableTransformer::from(&model),
        &t1_region(&emb, 1, 0.02, PNorm::L2),
        label,
        &cfg,
    );
    let r2 = certify(
        &VerifiableTransformer::from(&reloaded),
        &t1_region(&reloaded.embed(&tokens), 1, 0.02, PNorm::L2),
        label,
        &cfg,
    );
    assert_eq!(r1.margins, r2.margins, "margins drifted across a save/load");
    let _ = std::fs::remove_dir_all(dir);
}
