//! End-to-end serving acceptance: export a checkpoint, load it into a live
//! server over TCP, certify, replay from the cache bit-for-bit, and prove
//! that a 1 ms deadline yields a `timeout` error — not a hang — with the
//! server staying healthy afterwards.

use std::net::TcpListener;

use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept::serve::client::Client;
use deept::serve::protocol::{CertifyRequest, ErrorCode, RadiusSearchSpec, Request, Response};
use deept::serve::server::{ServeConfig, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(seed: u64) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 8,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

fn eps_certify(eps: f64) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3, 4],
        position: 1,
        norm: "l2".into(),
        variant: "fast".into(),
        eps: Some(eps),
        radius_search: None,
        synonyms: None,
        deadline_ms: None,
        trace: false,
    })
}

#[test]
fn checkpoint_to_server_to_cache_to_timeout() {
    // 1. Export: save a fingerprinted checkpoint to disk.
    let dir = std::env::temp_dir().join(format!("deept-serve-rt-{}", std::process::id()));
    let path = dir.join("toy.json");
    let saved_fp = deept::nn::checkpoint::save(&tiny_model(3), &path).expect("save checkpoint");

    // 2. Serve: ephemeral port, real TCP.
    let server = Server::new(ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        reduction_budget: 2000,
        default_deadline_ms: None,
        fuse_max: 8,
        ..ServeConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server_thread = {
        let server = server.clone();
        std::thread::spawn(move || server.serve_listener(listener).expect("serve"))
    };

    let mut client = Client::connect(&addr).expect("connect");

    // 3. Load the checkpoint by path; the fingerprint must round-trip.
    let resp = client
        .send(&Request::LoadModel {
            model_id: "toy".into(),
            path: path.to_string_lossy().into_owned(),
        })
        .expect("load_model");
    match &resp {
        Response::ModelLoaded { fingerprint, .. } => assert_eq!(fingerprint, &saved_fp),
        other => panic!("expected model_loaded, got {other:?}"),
    }

    // 4. Certify once (miss), then again (hit): bitwise identical payloads.
    let fresh = client.send(&eps_certify(0.01)).expect("certify");
    let replay = client.send(&eps_certify(0.01)).expect("certify again");
    match (&fresh, &replay) {
        (
            Response::Certify {
                cached: false,
                result: r1,
                label: l1,
                ..
            },
            Response::Certify {
                cached: true,
                result: r2,
                label: l2,
                ..
            },
        ) => {
            assert_eq!(l1, l2);
            assert_eq!(
                serde_json::to_string(r1).unwrap(),
                serde_json::to_string(r2).unwrap(),
                "cache replay must be bitwise identical"
            );
        }
        other => panic!("expected miss then hit, got {other:?}"),
    }

    // 5. A 1 ms deadline on a long radius search returns `timeout` — the
    //    worker gives the job up at a cooperative checkpoint, it does not
    //    hang.
    let resp = client
        .send(&Request::Certify(CertifyRequest {
            model_id: "toy".into(),
            tokens: vec![1, 2, 3, 4, 5, 6],
            position: 0,
            norm: "l2".into(),
            variant: "precise".into(),
            eps: None,
            radius_search: Some(RadiusSearchSpec {
                start: 0.001,
                iters: 64,
            }),
            synonyms: None,
            deadline_ms: Some(1),
            trace: false,
        }))
        .expect("deadline certify");
    match &resp {
        Response::Error { code, .. } => assert_eq!(*code, ErrorCode::Timeout),
        other => panic!("expected timeout error, got {other:?}"),
    }

    // 6. The server stays healthy: the same connection still answers, and
    //    the abort shows up in the counters.
    let resp = client
        .send(&eps_certify(0.01))
        .expect("post-timeout certify");
    assert!(
        matches!(&resp, Response::Certify { cached: true, .. }),
        "server unhealthy after a timeout: {resp:?}"
    );
    match client.send(&Request::Status).expect("status") {
        Response::Status(report) => {
            assert!(report.deadline_aborts >= 1, "{report:?}");
            assert!(report.cache_hits >= 2, "{report:?}");
            assert_eq!(report.models, vec!["toy".to_string()]);
        }
        other => panic!("expected status, got {other:?}"),
    }

    // 7. Graceful shutdown drains and joins.
    let resp = client.send(&Request::Shutdown).expect("shutdown");
    assert!(matches!(resp, Response::ShuttingDown { .. }), "{resp:?}");
    server_thread.join().expect("server thread");
    let _ = std::fs::remove_dir_all(dir);
}
