//! Threat model T2 end-to-end: abstract certification of synonym boxes must
//! agree with exhaustive enumeration, and the box region must cover every
//! concrete synonym combination's embedding.

mod common;

use deept::data::SynonymSets;
use deept::verifier::deept::DeepTConfig;
use deept::verifier::synonym;

#[test]
fn certified_sentences_survive_enumeration() {
    let (model, ds) = common::trained_transformer(1, 30);
    let synonyms = SynonymSets::from_embeddings(&model.token_embed, 3, 0.8);
    let cfg = DeepTConfig::fast(1500);
    let mut tried = 0;
    let mut certified = 0;
    for (tokens, label) in ds.test.iter().take(40) {
        if model.predict(tokens) != *label {
            continue;
        }
        tried += 1;
        let cert = synonym::certify_deept(&model, tokens, &synonyms, *label, &cfg);
        if cert.certified {
            certified += 1;
            let enu = synonym::enumerate(&model, tokens, &synonyms, *label, 200_000);
            assert!(
                enu.robust,
                "abstractly certified sentence has a concrete synonym attack"
            );
        }
    }
    assert!(tried >= 10, "too few evaluable sentences");
    // Non-vacuity: with tight synonym balls some sentences should certify.
    assert!(certified > 0, "no sentence certified — test is vacuous");
}

#[test]
fn enumeration_exhausts_small_spaces() {
    let (model, ds) = common::trained_transformer(1, 31);
    let synonyms = SynonymSets::from_embeddings(&model.token_embed, 2, 0.8).truncated(1);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let combos = synonyms.combinations(&tokens);
    let out = synonym::enumerate(&model, &tokens, &synonyms, label, u64::MAX);
    if out.robust {
        assert!(out.exhausted);
        assert_eq!(out.checked as u128, combos);
    } else {
        assert!((out.checked as u128) <= combos);
    }
}

#[test]
fn t2_region_contains_every_combination_embedding() {
    use deept::verifier::network::t2_region;
    let (model, ds) = common::trained_transformer(1, 32);
    let synonyms = SynonymSets::from_embeddings(&model.token_embed, 3, 1.0);
    let (tokens, _) = common::correct_sentence(&model, &ds);
    let emb = model.embed(&tokens);
    let alts = synonym::alternatives(&model, &tokens, &synonyms);
    let region = t2_region(&emb, &alts);
    let (lo, hi) = region.bounds();
    // Every single-word substitution's embedding row must lie in the box.
    for (i, &t) in tokens.iter().enumerate() {
        for &s in synonyms.of(t) {
            let mut swapped = tokens.clone();
            swapped[i] = s;
            let e2 = model.embed(&swapped);
            for d in 0..emb.cols() {
                let k = i * emb.cols() + d;
                let v = e2.at(i, d);
                assert!(
                    v >= lo[k] - 1e-9 && v <= hi[k] + 1e-9,
                    "synonym embedding escapes the T2 box"
                );
            }
        }
    }
}
