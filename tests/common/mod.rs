//! Shared fixtures for the integration tests: small trained models.

use deept::data::sentiment::{self, SentimentDataset};
use deept::nn::train::{train, TrainConfig};
use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small trained sentiment transformer plus its corpus (deterministic).
pub fn trained_transformer(layers: usize, seed: u64) -> (TransformerClassifier, SentimentDataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut spec = sentiment::sst_spec();
    spec.train = 350;
    spec.test = 80;
    spec.max_len = 7;
    let ds = sentiment::generate(spec, &mut rng);
    let mut model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: ds.vocab.len(),
            max_len: 7,
            embed_dim: 12,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    train(
        &mut model,
        &ds.train,
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    (model, ds)
}

/// First correctly classified test sentence.
pub fn correct_sentence(
    model: &TransformerClassifier,
    ds: &SentimentDataset,
) -> (Vec<usize>, usize) {
    ds.test
        .iter()
        .find(|(t, l)| model.predict(t) == *l && t.len() >= 4)
        .cloned()
        .expect("some sentence classifies correctly")
}
