//! The complete branch-and-bound verifier against the incomplete zonotope
//! verifier and against brute-force attacks, on a trained image MLP.

use deept::data::images;
use deept::geocert::{max_robust_radius_linf, verify_linf, zonotope_radius, BnbConfig, Verdict};
use deept::nn::train::{accuracy, train, TrainConfig};
use deept::nn::Mlp;
use deept::verifier::Deadline;
use deept::zonotope::PNorm;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn trained_image_mlp() -> (Mlp, Vec<(Vec<f64>, usize)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(50);
    let spec = images::binary_spec(4, 40);
    let data = images::generate(spec, &mut rng);
    let mut mlp = Mlp::new(&[16, 8, 2], &mut rng);
    train(
        &mut mlp,
        &data,
        TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 3e-3,
        },
        &mut rng,
    );
    (mlp, data)
}

#[test]
fn complete_radius_dominates_zonotope_and_resists_sampling() {
    let (mlp, data) = trained_image_mlp();
    assert!(accuracy(&mlp, &data) > 0.9, "image MLP failed to train");
    // No node cap any more: the complete search is bounded by a cooperative
    // deadline generous enough that it never fires here.
    let cfg = BnbConfig::with_deadline(Deadline::after(std::time::Duration::from_secs(300)));
    let mut rng = ChaCha8Rng::seed_from_u64(51);
    let mut checked = 0;
    for (x0, y) in data.iter().take(4) {
        if mlp.predict(x0) != *y {
            continue;
        }
        checked += 1;
        let complete = max_robust_radius_linf(&mlp, x0, *y, &cfg, 14);
        let zono = zonotope_radius(&mlp, x0, PNorm::Linf, *y, 14);
        assert!(
            complete >= zono - 1e-6,
            "complete {complete} < zonotope {zono}"
        );
        // Random points inside the certified box never flip.
        for _ in 0..200 {
            let p: Vec<f64> = x0
                .iter()
                .map(|&c| c + rng.gen_range(-1.0..1.0) * complete * 0.999)
                .collect();
            assert_eq!(mlp.predict(&p), *y, "flip inside complete-certified box");
        }
    }
    assert!(checked >= 2, "too few correctly classified points");
}

#[test]
fn falsification_returns_genuine_adversarial_inputs() {
    let (mlp, data) = trained_image_mlp();
    let (x0, y) = data
        .iter()
        .find(|(x, y)| mlp.predict(x) == *y)
        .expect("correct point");
    // A huge box must contain an attack for a non-constant classifier.
    match verify_linf(&mlp, x0, 3.0, *y, &BnbConfig::default()) {
        Verdict::Falsified { input } => {
            assert_ne!(mlp.predict(&input), *y);
            for (v, c) in input.iter().zip(x0) {
                assert!((v - c).abs() <= 3.0 + 1e-9);
            }
        }
        Verdict::Robust => {
            // Only possible if the classifier is constant on the box —
            // check that claim by sampling.
            let mut rng = ChaCha8Rng::seed_from_u64(52);
            for _ in 0..500 {
                let p: Vec<f64> = x0.iter().map(|&c| c + rng.gen_range(-3.0..3.0)).collect();
                assert_eq!(
                    mlp.predict(&p),
                    *y,
                    "robust verdict contradicted by sampling"
                );
            }
        }
        Verdict::Unknown { .. } => {}
    }
}
