//! Telemetry equivalence and structure: an active probe must observe the
//! verification without perturbing it — the probed propagation returns a
//! bitwise-identical logits zonotope — and the collected trace must mirror
//! the pipeline's actual shape (per-layer spans, transformer sub-spans,
//! radius-search steps) and serialize to well-formed JSON.

mod common;

use deept::telemetry::TraceCollector;
use deept::verifier::deept::{certify, certify_probed, propagate, propagate_probed, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::{max_certified_radius, max_certified_radius_probed};
use deept::zonotope::PNorm;

#[test]
fn probed_propagation_is_bitwise_identical() {
    let (model, ds) = common::trained_transformer(2, 21);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
        let region = t1_region(&emb, 1, 0.02, p);
        let plain = propagate(&net, &region, &cfg);
        let collector = TraceCollector::new();
        let probed = propagate_probed(&net, &region, &cfg, &collector);
        // Bitwise identity: the probe observes, it never influences.
        assert_eq!(plain, probed, "probed logits differ for {p:?}");
        let plain_cert = certify(&net, &region, label, &cfg);
        let probed_cert = certify_probed(&net, &region, label, &cfg, &collector);
        assert_eq!(plain_cert.certified, probed_cert.certified);
        assert_eq!(plain_cert.margins, probed_cert.margins);
    }
}

#[test]
fn trace_mirrors_pipeline_structure() {
    let layers = 2;
    let (model, ds) = common::trained_transformer(layers, 22);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    let collector = TraceCollector::new();
    certify_probed(
        &net,
        &t1_region(&emb, 1, 0.02, PNorm::L2),
        label,
        &cfg,
        &collector,
    );
    let trace = collector.finish();

    assert_eq!(trace.unbalanced_exits, 0, "span enters/exits must pair up");
    assert_eq!(trace.spans.len(), 1, "one top-level propagate span");
    let root = &trace.spans[0];
    assert_eq!(root.group, "propagate");
    assert!(root.duration_s >= 0.0);
    let stats = root.stats.expect("propagate records logits stats");
    assert!(stats.mean_width > 0.0 && stats.max_width >= stats.mean_width);
    // The propagate span carries thread-pool counters for all kernel work
    // inside it (workers, chunk tasks, busy time).
    let par = root.parallel.expect("propagate records parallel stats");
    assert!(par.workers >= 1);
    assert!(par.invocations >= 1, "kernels ran on the parallel layer");
    assert!(par.tasks >= par.invocations);

    let layer_spans: Vec<_> = root
        .children
        .iter()
        .filter(|c| c.group == "encoder_layer")
        .collect();
    assert_eq!(layer_spans.len(), layers, "one span per encoder layer");
    for (i, layer) in layer_spans.iter().enumerate() {
        assert_eq!(layer.index, Some(i));
        assert_eq!(layer.label, format!("encoder_layer[{i}]"));
        assert!(layer.stats.is_some(), "layer output stats recorded");
        // Each encoder layer runs attention, two layer norms and the FFN.
        let groups: Vec<&str> = layer.children.iter().map(|c| c.group.as_str()).collect();
        assert!(groups.contains(&"attention"), "layer {i}: {groups:?}");
        assert!(groups.contains(&"ffn"), "layer {i}: {groups:?}");
        assert_eq!(
            groups.iter().filter(|g| **g == "layer_norm").count(),
            2,
            "layer {i}: {groups:?}"
        );
        // Attention contains the per-head dot products and softmaxes.
        let attention = layer
            .children
            .iter()
            .find(|c| c.group == "attention")
            .expect("attention span");
        let heads = model.config.num_heads;
        let dots = attention
            .children
            .iter()
            .filter(|c| c.group == "dot_product")
            .count();
        let softmaxes = attention
            .children
            .iter()
            .filter(|c| c.group == "softmax")
            .count();
        assert_eq!(dots, 2 * heads, "scores + attention·values per head");
        assert_eq!(softmaxes, heads);
    }
    assert!(
        root.children.iter().any(|c| c.group == "pooling"),
        "pooling span present"
    );
    // The per-layer width table is derivable from the trace.
    let widths = trace.layer_widths();
    assert_eq!(widths.len(), layers);
    for row in &widths {
        assert!(row.mean_width > 0.0);
    }
}

#[test]
fn radius_search_steps_and_spans_are_recorded() {
    let (model, ds) = common::trained_transformer(1, 23);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    let verify =
        |radius: f64| certify(&net, &t1_region(&emb, 1, radius, PNorm::L2), label, &cfg).certified;
    let plain = max_certified_radius(verify, 0.01, 10);

    let collector = TraceCollector::new();
    let probed = max_certified_radius_probed(
        |radius| {
            certify_probed(
                &net,
                &t1_region(&emb, 1, radius, PNorm::L2),
                label,
                &cfg,
                &collector,
            )
            .certified
        },
        0.01,
        10,
        &collector,
    );
    assert_eq!(
        plain, probed,
        "probed binary search returns the same radius"
    );

    let trace = collector.finish();
    assert_eq!(trace.unbalanced_exits, 0);
    assert!(!trace.radius_steps.is_empty());
    for (i, step) in trace.radius_steps.iter().enumerate() {
        assert_eq!(step.iteration, i, "query indices are sequential");
        assert!(step.radius > 0.0);
    }
    let best = trace
        .radius_steps
        .iter()
        .filter(|s| s.certified)
        .map(|s| s.radius)
        .fold(0.0, f64::max);
    assert_eq!(
        best, probed,
        "best certified query equals the returned radius"
    );
    // One radius_search root wrapping one radius_iter span per query.
    let root = &trace.spans[0];
    assert_eq!(root.group, "radius_search");
    let iters = root
        .children
        .iter()
        .filter(|c| c.group == "radius_iter")
        .count();
    assert_eq!(iters, trace.radius_steps.len());
}

#[test]
fn trace_serializes_to_wellformed_json() {
    let (model, ds) = common::trained_transformer(1, 24);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    let collector = TraceCollector::new();
    certify_probed(
        &net,
        &t1_region(&emb, 1, 0.02, PNorm::L2),
        label,
        &cfg,
        &collector,
    );
    let mut trace = collector.finish();
    trace.set_meta("verifier", "DeepT-Fast");

    let path = std::env::temp_dir().join("deept_telemetry_trace_test.json");
    trace.save_json(&path).expect("trace written");
    let json = std::fs::read_to_string(&path).expect("trace readable");
    std::fs::remove_file(&path).ok();
    for needle in [
        "\"meta\"",
        "\"verifier\": \"DeepT-Fast\"",
        "\"spans\"",
        "\"encoder_layer[0]\"",
        "\"num_eps\"",
        "\"duration_s\"",
        "\"parallel\"",
        "\"busy_ns\"",
    ] {
        assert!(json.contains(needle), "missing {needle}");
    }
    // The JSON round-trips through serde_json's parser (the bench harness
    // and external tooling read these files).
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert!(parsed["total_s"].as_f64().expect("total_s") >= 0.0);
    assert_eq!(parsed["unbalanced_exits"].as_u64(), Some(0));
    assert!(parsed["spans"]
        .as_array()
        .map(|a| !a.is_empty())
        .unwrap_or(false));
}
