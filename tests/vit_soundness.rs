//! Vision-Transformer certification soundness: abstract pixel-space bounds
//! must contain the concrete logits of sampled perturbed images.

use deept::nn::{LayerNormKind, PatchConfig, TransformerConfig, VisionTransformer};
use deept::tensor::Matrix;
use deept::verifier::deept::{propagate, DeepTConfig};
use deept::verifier::network::VerifiableTransformer;
use deept::zonotope::{PNorm, Zonotope};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn vit_pixel_region_propagation_is_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(60);
    let patches = PatchConfig {
        image_h: 8,
        image_w: 8,
        patch: 4,
    };
    let vit = VisionTransformer::new(
        TransformerConfig {
            vocab_size: 0,
            max_len: 4,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: 1,
            num_classes: 3,
            layer_norm: LayerNormKind::NoStd,
        },
        patches,
        &mut rng,
    );
    let pixels: Vec<f64> = (0..64)
        .map(|i| (i as f64 * 0.13).sin() * 0.5 + 0.5)
        .collect();
    let radius = 0.02;

    // Build the pixel permutation into patches, then the embedded region.
    let n = 64;
    let mut perm = Matrix::zeros(n, n);
    let mut unit = vec![0.0; n];
    for i in 0..n {
        unit[i] = 1.0;
        let p = vit.patches.patches(&unit);
        for (dst, &v) in p.as_slice().iter().enumerate() {
            if v != 0.0 {
                perm.set(dst, i, v);
            }
        }
        unit[i] = 0.0;
    }
    let px = Matrix::row_vector(pixels.clone());
    let ball = Zonotope::from_lp_ball(&px, radius, PNorm::Linf, &[0]);
    let embedded = ball
        .linear_vars(&perm, 4, 16)
        .matmul_right(&vit.patch_w)
        .add_row_bias(vit.patch_b.row(0))
        .add_const(&vit.pos_embed);

    let net = VerifiableTransformer::from(&vit);
    let logits = propagate(&net, &embedded, &DeepTConfig::fast(2000));
    let (lo, hi) = logits.bounds();

    for _ in 0..100 {
        let perturbed: Vec<f64> = pixels
            .iter()
            .map(|&p| p + rng.gen_range(-radius..=radius))
            .collect();
        let out = vit.logits(&perturbed);
        for c in 0..3 {
            assert!(
                out.at(0, c) >= lo[c] - 1e-7 && out.at(0, c) <= hi[c] + 1e-7,
                "ViT logit {c} = {} escapes [{}, {}]",
                out.at(0, c),
                lo[c],
                hi[c]
            );
        }
    }
}
