//! End-to-end soundness: a certified region must contain no adversarial
//! example — checked with the randomized attack and with exhaustive
//! sampling of the concrete network.

mod common;

use deept::verifier::attack::attack_t1;
use deept::verifier::deept::{certify, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::PNorm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn certified_radius_resists_randomized_attack() {
    let (model, ds) = common::trained_transformer(2, 10);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
        let position = 1;
        let r = max_certified_radius(
            |radius| certify(&net, &t1_region(&emb, position, radius, p), label, &cfg).certified,
            0.01,
            14,
        );
        assert!(r > 0.0, "certified radius must be positive for {p:?}");
        // The attack gets many tries strictly inside the certified ball.
        let adv = attack_t1(&model, &tokens, position, r * 0.999, p, 500, &mut rng);
        assert!(
            adv.is_none(),
            "attack succeeded inside certified {p:?} ball of radius {r}"
        );
    }
}

#[test]
fn certification_fails_beyond_the_attack_radius() {
    // If a real attack exists at radius r, certification at radius r must
    // fail (contrapositive of soundness).
    let (model, ds) = common::trained_transformer(1, 11);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    let mut rng = ChaCha8Rng::seed_from_u64(78);
    if let Some(_adv) = attack_t1(&model, &tokens, 1, 5.0, PNorm::L2, 500, &mut rng) {
        let res = certify(&net, &t1_region(&emb, 1, 5.0, PNorm::L2), label, &cfg);
        assert!(
            !res.certified,
            "certified a region containing a real attack"
        );
    }
}

#[test]
fn margins_match_concrete_network_at_zero_radius() {
    let (model, ds) = common::trained_transformer(1, 12);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(1500);
    let res = certify(&net, &t1_region(&emb, 0, 0.0, PNorm::L2), label, &cfg);
    let logits = model.logits(&tokens);
    let concrete_margin = logits.at(0, label) - logits.at(0, 1 - label);
    assert!((res.margins[1 - label] - concrete_margin).abs() < 1e-6);
}
