//! Soundness of every verifier *configuration* knob: whatever the ablation
//! (norm order, refinement, budgets, combined variant), certified regions
//! must resist attack.

mod common;

use deept::verifier::attack::attack_t1;
use deept::verifier::deept::{certify, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::{NormOrder, PNorm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn all_configurations_certify_soundly() {
    let (model, ds) = common::trained_transformer(2, 90);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let configs: Vec<(&str, DeepTConfig)> = vec![
        ("fast", DeepTConfig::fast(1500)),
        (
            "fast-pfirst",
            DeepTConfig::fast(1500).with_norm_order(NormOrder::PFirst),
        ),
        (
            "fast-norefine",
            DeepTConfig::fast(1500).with_softmax_refinement(false),
        ),
        ("fast-tiny-budget", DeepTConfig::fast(8)),
        ("precise", DeepTConfig::precise(96)),
        ("combined", DeepTConfig::combined(96)),
    ];
    for (name, cfg) in configs {
        let r = max_certified_radius(
            |radius| certify(&net, &t1_region(&emb, 1, radius, PNorm::L2), label, &cfg).certified,
            0.01,
            10,
        );
        assert!(r > 0.0, "{name}: no positive certified radius");
        let adv = attack_t1(&model, &tokens, 1, r * 0.999, PNorm::L2, 250, &mut rng);
        assert!(adv.is_none(), "{name}: attack inside certified radius {r}");
    }
}

#[test]
fn budget_trades_precision_not_soundness() {
    // Shrinking the noise-symbol budget may shrink the certified radius but
    // never flips an uncertifiable query to certified unsoundly.
    let (model, ds) = common::trained_transformer(2, 92);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let radius_for = |budget: usize| {
        let cfg = DeepTConfig::fast(budget);
        max_certified_radius(
            |r| certify(&net, &t1_region(&emb, 1, r, PNorm::L2), label, &cfg).certified,
            0.01,
            12,
        )
    };
    let tight = radius_for(8);
    let generous = radius_for(100_000);
    // More symbols retained = no less precision (DecorrelateMin_k only
    // loses correlation when it drops symbols).
    assert!(
        generous >= tight * 0.8,
        "generous budget much worse than tight: {generous} vs {tight}"
    );
    assert!(tight > 0.0);
}
