//! Regression guard for the metrics layer's zero-interference contract:
//! certification results must be bitwise identical whether the metrics
//! gate is on (hot-path counters publish, the serve profiler observes the
//! span stream) or off (`DEEPT_METRICS=off`). The gate may only change
//! *observability*, never arithmetic.

use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept::verifier::deept::{certify, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::PNorm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn model(layers: usize) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

/// Runs `f` once with the gate forced on and once forced off, restoring
/// the environment-derived state afterwards, and returns both results.
fn with_gate_toggled<T>(mut f: impl FnMut() -> T) -> (T, T) {
    deept::metrics::set_enabled(Some(true));
    let on = f();
    deept::metrics::set_enabled(Some(false));
    let off = f();
    deept::metrics::set_enabled(None);
    (on, off)
}

#[test]
fn certification_margins_are_bitwise_identical_across_the_gate() {
    let model = model(2);
    let tokens = [1, 2, 3, 4, 5];
    let label = model.predict(&tokens);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    for variant in [
        DeepTConfig::fast(200),
        DeepTConfig::precise(200),
        DeepTConfig::combined(200),
    ] {
        let (on, off) = with_gate_toggled(|| {
            let region = t1_region(&emb, 1, 5e-3, PNorm::L2);
            let res = certify(&net, &region, label, &variant);
            (res.certified, res.margins)
        });
        assert_eq!(on.0, off.0, "certified flag diverged across the gate");
        assert_eq!(
            on.1.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            off.1.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            "margins diverged bitwise across the metrics gate"
        );
    }
}

#[test]
fn radius_search_is_bitwise_identical_across_the_gate() {
    let model = model(1);
    let tokens = [2, 4, 6];
    let label = model.predict(&tokens);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(200);
    let (on, off) = with_gate_toggled(|| {
        max_certified_radius(
            |r| certify(&net, &t1_region(&emb, 0, r, PNorm::Linf), label, &cfg).certified,
            0.01,
            20,
        )
    });
    assert_eq!(
        on.to_bits(),
        off.to_bits(),
        "certified radius diverged bitwise across the metrics gate ({on} vs {off})"
    );
}

#[test]
fn gate_off_suppresses_hot_path_counters() {
    let model = model(1);
    let tokens = [1, 2, 3];
    let label = model.predict(&tokens);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(200);
    let matmuls = |snapshot: &deept::metrics::RegistrySnapshot| {
        snapshot
            .counter_value("deept_zono_matmul_total")
            .unwrap_or(0)
    };

    deept::metrics::set_enabled(Some(false));
    let before_off = matmuls(&deept::metrics::global().snapshot());
    let _ = certify(&net, &t1_region(&emb, 0, 1e-3, PNorm::L2), label, &cfg);
    let after_off = matmuls(&deept::metrics::global().snapshot());
    assert_eq!(
        before_off, after_off,
        "gated counters must not move with metrics off"
    );

    deept::metrics::set_enabled(Some(true));
    let _ = certify(&net, &t1_region(&emb, 0, 1e-3, PNorm::L2), label, &cfg);
    let after_on = matmuls(&deept::metrics::global().snapshot());
    deept::metrics::set_enabled(None);
    assert!(
        after_on > after_off,
        "hot-path counters must publish with metrics on"
    );
}
