//! Cross-verifier precision ordering on identical queries:
//! Interval ⊑ CROWN-BaF ⊑ CROWN-Backward, and DeepT-Fast ⊑ DeepT-Precise
//! (ℓ∞); DeepT-Fast must dominate interval propagation.

mod common;

use deept::verifier::crown::{self, CrownConfig, CrownInput};
use deept::verifier::deept::{self as deept_v, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::max_certified_radius;
use deept::zonotope::PNorm;

fn crown_radius(
    model: &deept::nn::TransformerClassifier,
    tokens: &[usize],
    label: usize,
    p: PNorm,
    cfg: &CrownConfig,
) -> f64 {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    max_certified_radius(
        |r| crown::certify(&net, &CrownInput::t1(&emb, 1, r, p), label, cfg).certified,
        0.01,
        14,
    )
}

fn deept_radius(
    model: &deept::nn::TransformerClassifier,
    tokens: &[usize],
    label: usize,
    p: PNorm,
    cfg: &DeepTConfig,
) -> f64 {
    let net = VerifiableTransformer::from(model);
    let emb = model.embed(tokens);
    max_certified_radius(
        |r| deept_v::certify(&net, &t1_region(&emb, 1, r, p), label, cfg).certified,
        0.01,
        14,
    )
}

#[test]
fn linear_domain_ordering() {
    // Interval propagation is dominated by both linear-bound variants;
    // Backward dominates BaF on average (per-query strictness is not a
    // theorem because McCormick line choices are locally greedy).
    let (model, ds) = common::trained_transformer(2, 20);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    for p in [PNorm::L2, PNorm::Linf] {
        let interval = crown_radius(&model, &tokens, label, p, &CrownConfig::interval());
        let baf = crown_radius(&model, &tokens, label, p, &CrownConfig::baf());
        let backward = crown_radius(&model, &tokens, label, p, &CrownConfig::backward());
        assert!(baf >= interval * 0.9, "BaF {baf} < interval {interval}");
        // Backward takes the meet of both forward analyses, so it dominates
        // BaF by construction.
        assert!(backward >= baf * 0.999, "backward {backward} < BaF {baf}");
    }
}

#[test]
fn deept_precise_dominates_fast_on_linf() {
    let (model, ds) = common::trained_transformer(1, 21);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    // Same (generous) budget for both so only the dot product differs.
    let fast = deept_radius(
        &model,
        &tokens,
        label,
        PNorm::Linf,
        &DeepTConfig::fast(100_000),
    );
    let precise = deept_radius(
        &model,
        &tokens,
        label,
        PNorm::Linf,
        &DeepTConfig::precise(100_000),
    );
    assert!(precise >= fast * 0.999, "precise {precise} < fast {fast}");
}

#[test]
fn deept_fast_dominates_interval() {
    let (model, ds) = common::trained_transformer(2, 22);
    let (tokens, label) = common::correct_sentence(&model, &ds);
    for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
        let deept = deept_radius(&model, &tokens, label, p, &DeepTConfig::fast(3000));
        let interval = crown_radius(&model, &tokens, label, p, &CrownConfig::interval());
        assert!(
            deept >= interval * 0.999,
            "{p:?}: DeepT-Fast {deept} < interval {interval}"
        );
    }
}
